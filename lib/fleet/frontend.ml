(* Fleet front-end over Serve.Host instances on a shared clock.

   The cycle loop keeps one invariant: every submitted request ends in
   exactly one terminal outcome, whichever of the five paths (cache,
   coalesce, host completion, retirement, shed/timeout) resolves it
   first.  All iteration orders are fixed (host index, class index,
   kqueue seed), so a config + submission set replays identically. *)

type config = {
  n_hosts : int;
  classes : Serve.Host.class_config list;
  kq_segments : int;
  kq_k : int;
  cache_capacity : int;
  pending_capacity : int;
  dispatch_per_cycle : int;
  steal_threshold : int;
  steal_batch : int;
  virtual_nodes : int;
  seed : int;
  deadline : int option;
  retries : int;
  dedup : bool;
  stealing : bool;
}

let default_config =
  { n_hosts = 4;
    classes = [ Serve.Host.default_class ];
    kq_segments = 64;
    kq_k = 4;
    cache_capacity = 256;
    pending_capacity = 64;
    dispatch_per_cycle = 8;
    steal_threshold = 4;
    steal_batch = 2;
    virtual_nodes = 64;
    seed = 1;
    deadline = None;
    retries = 0;
    dedup = true;
    stealing = true }

let baseline c = { c with dedup = false; stealing = false }

type via = Host of int | Cache | Coalesced | Retired

type 'res outcome =
  | Pending
  | Done of { result : 'res; latency : int; via : via }
  | Shed of { at : int }
  | Timed_out of { tries : int }
  | Failed of string

type 'job req = { id : int; arrival : int; cls : int; job : 'job; key : string }

type ('job, 'res) t = {
  cfg : config;
  key_fn : 'job -> string;
  make_host : int -> ('job, 'res) Serve.Backend_intf.replica;
  mutable submitted : 'job req list; (* reversed *)
  mutable n_reqs : int;
  mutable ran : bool;
  mutable out : 'res outcome array;
}

let create ?(config = default_config) ~make_host ~key () =
  let c = config in
  if c.n_hosts < 1 then invalid_arg "Frontend.create: n_hosts < 1";
  if c.classes = [] then invalid_arg "Frontend.create: no classes";
  if c.dispatch_per_cycle < 1 then
    invalid_arg "Frontend.create: dispatch_per_cycle < 1";
  { cfg = c;
    key_fn = key;
    make_host;
    submitted = [];
    n_reqs = 0;
    ran = false;
    out = [||] }

let submit ?(cls = 0) t ~arrival job =
  if t.ran then invalid_arg "Frontend.submit: already ran";
  if arrival < 0 then invalid_arg "Frontend.submit: negative arrival";
  if cls < 0 || cls >= List.length t.cfg.classes then
    invalid_arg "Frontend.submit: unknown class";
  let id = t.n_reqs in
  t.submitted <-
    { id; arrival; cls; job; key = t.key_fn job } :: t.submitted;
  t.n_reqs <- t.n_reqs + 1;
  id

let submit_trace t trace =
  Array.iter
    (fun r ->
      ignore (submit ~cls:r.Trace.cls t ~arrival:r.Trace.arrival r.Trace.payload))
    trace

let request_count t = t.n_reqs

let outcome t id =
  if id < 0 || id >= t.n_reqs then invalid_arg "Frontend.outcome: bad id";
  if not t.ran then Pending else t.out.(id)

let outcomes t = if t.ran then Array.copy t.out else Array.make t.n_reqs Pending

(* ---- stats ---- *)

type host_stats = {
  h_host : int;
  h_slots : int;
  h_steps : int;
  h_busy_slot_cycles : int;
  h_queue_depth_sum : int;
  h_queue_depth_max : int;
  h_queue_depth : Workload.Histogram.t;
  h_admitted : int;
  h_violations : int;
}

type stats = {
  s_cycles : int;
  s_requests : int;
  s_completed : int;
  s_cache_hits : int;
  s_coalesced : int;
  s_retired : int;
  s_shed : int;
  s_timed_out : int;
  s_failed : int;
  s_dispatched : int;
  s_steals : int;
  s_latency : Workload.Histogram.t;
  s_per_host : host_stats array;
  s_kq_bound : int;
  s_kq_max_observed : int;
  s_kq_dequeues : int;
  s_kq_violations : int;
  s_monitor_violations : int;
}

let occupancy h =
  if h.h_steps = 0 || h.h_slots = 0 then 0.
  else
    float_of_int h.h_busy_slot_cycles /. float_of_int (h.h_slots * h.h_steps)

let violations s = s.s_kq_violations + s.s_monitor_violations

let cache_hit_ratio s =
  if s.s_requests = 0 then 0.
  else float_of_int s.s_cache_hits /. float_of_int s.s_requests

(* ---- the cycle loop ---- *)

type ('job, 'res) running = {
  t : ('job, 'res) t;
  hosts : ('job, 'res) Serve.Host.t array;
  ring : Ring.t;
  kqs : 'job req Kqueue.t array; (* one per class *)
  cache : 'res Cache.t;
  (* key -> (primary id, waiting duplicate ids); bounded *)
  pending : (string, int * int list ref) Hashtbl.t;
  (* key -> ids dispatched past the front-end (kqueue or host) *)
  inflight : (string, int list ref) Hashtbl.t;
  host_of : (int, int) Hashtbl.t;
  admitted : int array;
  lat : Workload.Histogram.t;
  mutable unresolved : int;
  mutable completed : int;
  mutable cache_hits : int;
  mutable coalesced : int;
  mutable retired : int;
  mutable shed : int;
  mutable timed_out : int;
  mutable failed : int;
  mutable dispatched : int;
  mutable steals : int;
}

let resolve r id o =
  if r.t.out.(id) = Pending then begin
    r.t.out.(id) <- o;
    r.unresolved <- r.unresolved - 1;
    match o with
    | Done { latency; via; _ } ->
        r.completed <- r.completed + 1;
        Workload.Histogram.add r.lat latency;
        (match via with
        | Cache -> r.cache_hits <- r.cache_hits + 1
        | Coalesced -> r.coalesced <- r.coalesced + 1
        | Retired -> r.retired <- r.retired + 1
        | Host _ -> ())
    | Shed _ -> r.shed <- r.shed + 1
    | Timed_out _ -> r.timed_out <- r.timed_out + 1
    | Failed _ -> r.failed <- r.failed + 1
    | Pending -> assert false
  end

let drop_inflight r key id =
  match Hashtbl.find_opt r.inflight key with
  | None -> ()
  | Some ids ->
      ids := List.filter (fun i -> i <> id) !ids;
      if !ids = [] then Hashtbl.remove r.inflight key

(* A result for [key] landed: fill the cache, release coalesced
   waiters, and retire still-queued twins from host queues.  Twins
   already running are left alone — a launched token is not retracted
   — and resolve through their own completion. *)
let settle_key r ~now ~key ~(by_id : 'a req array) result =
  let cfg = r.t.cfg in
  if cfg.dedup then begin
    Cache.add r.cache key result;
    (match Hashtbl.find_opt r.pending key with
    | Some (_, waiters) ->
        List.iter
          (fun wid ->
            resolve r wid
              (Done
                 { result;
                   latency = max 1 (now - by_id.(wid).arrival);
                   via = Coalesced }))
          (List.rev !waiters);
        Hashtbl.remove r.pending key
    | None -> ());
    match Hashtbl.find_opt r.inflight key with
    | None -> ()
    | Some ids ->
        let keep =
          List.filter
            (fun id ->
              if r.t.out.(id) <> Pending then false
              else
                match Hashtbl.find_opt r.host_of id with
                | Some h
                  when Serve.Host.complete_external r.hosts.(h) ~id ->
                    resolve r id
                      (Done
                         { result;
                           latency = max 1 (now - by_id.(id).arrival);
                           via = Retired });
                    false
                | Some _ -> true (* running; its own completion resolves it *)
                | None -> true (* still in a kqueue; caught at dispatch *))
            !ids
        in
        if keep = [] then Hashtbl.remove r.inflight key else ids := keep
  end

let run ?pool ?(max_cycles = 1_000_000) t =
  if t.ran then invalid_arg "Frontend.run: already ran";
  t.ran <- true;
  t.out <- Array.make t.n_reqs Pending;
  let cfg = t.cfg in
  (* by_id: submission order = id order; reqs: arrival order *)
  let by_id = Array.of_list (List.rev t.submitted) in
  let reqs =
    let a = Array.copy by_id in
    Array.stable_sort (fun a b -> compare a.arrival b.arrival) a;
    a
  in
  let n_classes = List.length cfg.classes in
  let r =
    { t;
      hosts =
        Array.init cfg.n_hosts (fun i ->
            Serve.Host.create ~classes:cfg.classes (t.make_host i));
      ring = Ring.create ~virtual_nodes:cfg.virtual_nodes ~hosts:cfg.n_hosts ();
      kqs =
        Array.init n_classes (fun c ->
            Kqueue.create ~seed:(cfg.seed + c)
              ~name:
                (Printf.sprintf "kqueue:%s"
                   (List.nth cfg.classes c).Serve.Host.cname)
              ~segments:cfg.kq_segments ~k:cfg.kq_k ());
      cache = Cache.create ~capacity:cfg.cache_capacity;
      pending = Hashtbl.create 64;
      inflight = Hashtbl.create 64;
      host_of = Hashtbl.create 64;
      admitted = Array.make cfg.n_hosts 0;
      lat = Workload.Histogram.create ();
      unresolved = t.n_reqs;
      completed = 0;
      cache_hits = 0;
      coalesced = 0;
      retired = 0;
      shed = 0;
      timed_out = 0;
      failed = 0;
      dispatched = 0;
      steals = 0 }
  in
  let track_inflight req =
    match Hashtbl.find_opt r.inflight req.key with
    | Some ids -> ids := req.id :: !ids
    | None -> Hashtbl.add r.inflight req.key (ref [ req.id ])
  in
  (* arrival: cache, then coalesce, then kqueue *)
  let arrive now req =
    let hit = if cfg.dedup then Cache.find r.cache req.key else None in
    match hit with
    | Some result -> resolve r req.id (Done { result; latency = 1; via = Cache })
    | None -> (
        match
          if cfg.dedup then Hashtbl.find_opt r.pending req.key else None
        with
        | Some (_, waiters) -> waiters := req.id :: !waiters
        | None ->
            if Kqueue.enqueue r.kqs.(req.cls) req then begin
              if cfg.dedup then begin
                track_inflight req;
                if Hashtbl.length r.pending < cfg.pending_capacity then
                  Hashtbl.add r.pending req.key (req.id, ref [])
                (* table full: this duplicate-to-be dispatches
                   independently; settle_key retires it later *)
              end
            end
            else resolve r req.id (Shed { at = now }))
  in
  (* dispatch: kqueue -> ring -> host admission *)
  let dispatch now =
    let budget = ref cfg.dispatch_per_cycle in
    let progress = ref true in
    while !budget > 0 && !progress do
      progress := false;
      for c = 0 to n_classes - 1 do
        if !budget > 0 then
          match Kqueue.dequeue r.kqs.(c) with
          | None -> ()
          | Some (req, _dist) ->
              progress := true;
              decr budget;
              if t.out.(req.id) = Pending then begin
                if cfg.dedup && Cache.mem r.cache req.key then begin
                  (* a twin's result landed while we queued *)
                  match Cache.find r.cache req.key with
                  | Some result ->
                      drop_inflight r req.key req.id;
                      resolve r req.id
                        (Done
                           { result;
                             latency = max 1 (now - req.arrival);
                             via = Cache })
                  | None -> assert false
                end
                else begin
                  let h = Ring.route r.ring req.key in
                  let ok =
                    Serve.Host.admit ~cls:req.cls ?deadline:cfg.deadline
                      ~retries:cfg.retries r.hosts.(h) ~id:req.id
                      ~arrival:req.arrival req.job
                  in
                  if ok then begin
                    Hashtbl.replace r.host_of req.id h;
                    r.admitted.(h) <- r.admitted.(h) + 1;
                    r.dispatched <- r.dispatched + 1
                  end
                  else begin
                    drop_inflight r req.key req.id;
                    (match Hashtbl.find_opt r.pending req.key with
                    | Some (prim, waiters) when prim = req.id ->
                        List.iter
                          (fun wid -> resolve r wid (Shed { at = now }))
                          (List.rev !waiters);
                        Hashtbl.remove r.pending req.key
                    | _ -> ());
                    resolve r req.id (Shed { at = now })
                  end
                end
              end
      done
    done
  in
  (* stealing: empty-queue hosts raid the most backed-up neighbor *)
  let steal_pass () =
    for thief = 0 to cfg.n_hosts - 1 do
      if Serve.Host.queue_depth r.hosts.(thief) = 0 then begin
        let victim = ref (-1) and depth = ref cfg.steal_threshold in
        for h = 0 to cfg.n_hosts - 1 do
          let d = Serve.Host.queue_depth r.hosts.(h) in
          if h <> thief && d > !depth then begin
            victim := h;
            depth := d
          end
        done;
        if !victim >= 0 then
          for _ = 1 to cfg.steal_batch do
            if
              Serve.Host.queue_depth r.hosts.(!victim) > cfg.steal_threshold
            then
              match Serve.Host.steal r.hosts.(!victim) with
              | Some q ->
                  if Serve.Host.admit_queued r.hosts.(thief) q then begin
                    Hashtbl.replace r.host_of q.Serve.Host.q_id thief;
                    r.admitted.(thief) <- r.admitted.(thief) + 1;
                    r.steals <- r.steals + 1
                  end
                  else
                    (* thief full (cannot happen from empty, but be
                       safe): hand it back *)
                    ignore (Serve.Host.admit_queued r.hosts.(!victim) q)
              | None -> ()
          done
      end
    done
  in
  let handle_event now host ev =
    match ev with
    | Serve.Host.Completed { id; result; latency; slot = _ } ->
        let key = by_id.(id).key in
        drop_inflight r key id;
        resolve r id (Done { result; latency; via = Host host });
        settle_key r ~now ~key ~by_id result
    | Serve.Host.Timed_out { id; tries } ->
        let key = by_id.(id).key in
        drop_inflight r key id;
        (match Hashtbl.find_opt r.pending key with
        | Some (prim, waiters) when prim = id ->
            List.iter
              (fun wid -> resolve r wid (Timed_out { tries }))
              (List.rev !waiters);
            Hashtbl.remove r.pending key
        | _ -> ());
        resolve r id (Timed_out { tries })
    | Serve.Host.Shed { id; at } ->
        let key = by_id.(id).key in
        drop_inflight r key id;
        (match Hashtbl.find_opt r.pending key with
        | Some (prim, waiters) when prim = id ->
            List.iter (fun wid -> resolve r wid (Shed { at })) (List.rev !waiters);
            Hashtbl.remove r.pending key
        | _ -> ());
        resolve r id (Shed { at })
  in
  let next_arrival = ref 0 in
  let cycle = ref 0 in
  while r.unresolved > 0 && !cycle < max_cycles do
    let now = !cycle in
    while
      !next_arrival < Array.length reqs
      && reqs.(!next_arrival).arrival <= now
    do
      arrive now reqs.(!next_arrival);
      incr next_arrival
    done;
    dispatch now;
    if cfg.stealing then steal_pass ();
    (* hosts are independent within a cycle: step them (optionally in
       parallel), then process events in host order — the processing
       order, not the stepping order, is what determinism needs *)
    let evs = Array.make cfg.n_hosts [] in
    (match pool with
    | Some p when cfg.n_hosts > 1 ->
        Parallel.Pool.run p
          (fun h -> evs.(h) <- Serve.Host.step r.hosts.(h))
          cfg.n_hosts
    | _ ->
        for h = 0 to cfg.n_hosts - 1 do
          evs.(h) <- Serve.Host.step r.hosts.(h)
        done);
    (* completions land at the post-step cycle *)
    for h = 0 to cfg.n_hosts - 1 do
      List.iter (handle_event (now + 1) h) evs.(h)
    done;
    incr cycle
  done;
  (* cycle-limit abort: fail whatever is left *)
  if r.unresolved > 0 then
    Array.iteri
      (fun id o -> if o = Pending then resolve r id (Failed "cycle limit"))
      t.out;
  Array.iter Serve.Host.finish r.hosts;
  let per_host =
    Array.mapi
      (fun i h ->
        let m = Serve.Host.metrics h in
        { h_host = i;
          h_slots = Serve.Host.slots h;
          h_steps = m.Serve.Host.m_steps;
          h_busy_slot_cycles = m.Serve.Host.m_busy_slot_cycles;
          h_queue_depth_sum = m.Serve.Host.m_queue_depth_sum;
          h_queue_depth_max = m.Serve.Host.m_queue_depth_max;
          h_queue_depth =
            Melastic.Profile.gauge_hist (Serve.Host.profile h) "queue_depth";
          h_admitted = r.admitted.(i);
          h_violations = Serve.Host.violations h })
      r.hosts
  in
  let kq_fold f init = Array.fold_left f init r.kqs in
  { s_cycles = !cycle;
    s_requests = t.n_reqs;
    s_completed = r.completed;
    s_cache_hits = r.cache_hits;
    s_coalesced = r.coalesced;
    s_retired = r.retired;
    s_shed = r.shed;
    s_timed_out = r.timed_out;
    s_failed = r.failed;
    s_dispatched = r.dispatched;
    s_steals = r.steals;
    s_latency = r.lat;
    s_per_host = per_host;
    s_kq_bound = cfg.kq_k - 1;
    s_kq_max_observed = kq_fold (fun a q -> max a (Kqueue.max_observed q)) 0;
    s_kq_dequeues = kq_fold (fun a q -> a + Kqueue.dequeues q) 0;
    s_kq_violations =
      kq_fold (fun a q -> a + List.length (Kqueue.violations q)) 0;
    s_monitor_violations =
      Array.fold_left (fun a h -> a + h.h_violations) 0 per_host }

let summary s =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "fleet: %d requests over %d cycles on %d hosts\n\
    \  done %d (cache %d, coalesced %d, retired %d)  shed %d  timed-out %d  \
     failed %d\n\
    \  dispatched %d  steals %d  cache hit ratio %.3f\n\
    \  latency p50/p95/p99 %d/%d/%d cycles (max %d)\n\
    \  kqueue relaxation: observed %d <= bound %d over %d dequeues (%d \
     violations)\n"
    s.s_requests s.s_cycles (Array.length s.s_per_host) s.s_completed
    s.s_cache_hits s.s_coalesced s.s_retired s.s_shed s.s_timed_out s.s_failed
    s.s_dispatched s.s_steals (cache_hit_ratio s)
    (Workload.Histogram.percentile s.s_latency 0.50)
    (Workload.Histogram.percentile s.s_latency 0.95)
    (Workload.Histogram.percentile s.s_latency 0.99)
    (Workload.Histogram.max_value s.s_latency)
    s.s_kq_max_observed s.s_kq_bound s.s_kq_dequeues s.s_kq_violations;
  Array.iter
    (fun h ->
      Printf.bprintf b
        "  host %d: %d admitted, occupancy %.2f, queue max %d%s\n" h.h_host
        h.h_admitted (occupancy h) h.h_queue_depth_max
        (if h.h_violations > 0 then
           Printf.sprintf "  [%d VIOLATIONS]" h.h_violations
         else ""))
    s.s_per_host;
  Printf.bprintf b "  monitor violations: %d\n" s.s_monitor_violations;
  Buffer.contents b
