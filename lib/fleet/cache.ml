(* LRU: Hashtbl keyed by payload + doubly linked recency list with a
   permanent sentinel node; sentinel.next is MRU, sentinel.prev is LRU. *)

type 'v node = {
  key : string;
  mutable value : 'v option; (* None only on the sentinel *)
  mutable prev : 'v node;
  mutable next : 'v node;
}

type 'v t = {
  cap : int;
  tbl : (string, 'v node) Hashtbl.t;
  sentinel : 'v node;
  mutable n_hits : int;
  mutable n_misses : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity < 1";
  let rec sentinel =
    { key = ""; value = None; prev = sentinel; next = sentinel }
  in
  { cap = capacity;
    tbl = Hashtbl.create (2 * capacity);
    sentinel;
    n_hits = 0;
    n_misses = 0 }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_front t n =
  n.next <- t.sentinel.next;
  n.prev <- t.sentinel;
  t.sentinel.next.prev <- n;
  t.sentinel.next <- n

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
      t.n_hits <- t.n_hits + 1;
      unlink n;
      push_front t n;
      n.value
  | None ->
      t.n_misses <- t.n_misses + 1;
      None

let mem t key = Hashtbl.mem t.tbl key

let add t key v =
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
      n.value <- Some v;
      unlink n;
      push_front t n
  | None ->
      if Hashtbl.length t.tbl >= t.cap then begin
        let lru = t.sentinel.prev in
        unlink lru;
        Hashtbl.remove t.tbl lru.key
      end;
      let n =
        { key; value = Some v; prev = t.sentinel; next = t.sentinel }
      in
      push_front t n;
      Hashtbl.replace t.tbl key n

let hits t = t.n_hits
let misses t = t.n_misses
