type request = { arrival : int; payload : string; cls : int }

type phase =
  | Steady of { cycles : int; rate : float }
  | Ramp of { cycles : int; rate0 : float; rate1 : float }
  | Burst of {
      cycles : int;
      base : float;
      peak : float;
      period : int;
      width : int;
    }

let phase_cycles phases =
  List.fold_left
    (fun acc p ->
      acc
      +
      match p with
      | Steady { cycles; _ } | Ramp { cycles; _ } | Burst { cycles; _ } ->
          cycles)
    0 phases

let scale f phases =
  List.map
    (function
      | Steady s -> Steady { s with rate = s.rate *. f }
      | Ramp r -> Ramp { r with rate0 = r.rate0 *. f; rate1 = r.rate1 *. f }
      | Burst b -> Burst { b with base = b.base *. f; peak = b.peak *. f })
    phases

(* rate at cycle c within a phase of length [cycles] *)
let rate_at p c =
  match p with
  | Steady { rate; _ } -> rate
  | Ramp { cycles; rate0; rate1 } ->
      let t = if cycles <= 1 then 1. else float_of_int c /. float_of_int (cycles - 1) in
      rate0 +. ((rate1 -. rate0) *. t)
  | Burst { base; peak; period; width; _ } ->
      if c mod period < width then peak else base

type payload_model = {
  hot_keys : int;
  hot_fraction : float;
  zipf_s : float;
  size_alpha : float;
  max_size : int;
  classes : int;
}

let default_model =
  { hot_keys = 32;
    hot_fraction = 0.6;
    zipf_s = 1.1;
    size_alpha = 1.3;
    max_size = 256;
    classes = 1 }

(* Zipf over ranks 1..n by inverse-CDF on the precomputed harmonic
   partial sums. *)
let zipf_cdf ~s ~n =
  let w = Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0. w in
  let acc = ref 0. in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let zipf_draw cdf u =
  let n = Array.length cdf in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

(* Pareto(alpha) size in [1, max], by inversion. *)
let pareto_size rng ~alpha ~max_size =
  let u = Random.State.float rng 1.0 in
  let u = if u <= 0. then epsilon_float else u in
  let s = int_of_float (Float.pow u (-1. /. alpha)) in
  max 1 (min max_size s)

(* Hot payloads must be a function of the key alone so repeats are
   byte-identical; derive the padding length from the key's digest. *)
let hot_payload m rank =
  let key = Printf.sprintf "hot-%d" rank in
  let size = 1 + (Ring.hash_string key mod m.max_size) in
  Printf.sprintf "%s:%s" key (String.make size 'h')

let poisson_draw rng lambda =
  (* Knuth's product method; fine for the per-cycle rates we use. *)
  let l = exp (-.lambda) in
  let k = ref 0 and p = ref 1.0 in
  let continue = ref true in
  while !continue do
    p := !p *. Random.State.float rng 1.0;
    if !p > l then incr k else continue := false
  done;
  !k

let generate ?(model = default_model) ~seed ~phases () =
  let m = model in
  if m.hot_keys < 1 then invalid_arg "Trace.generate: hot_keys < 1";
  if m.classes < 1 then invalid_arg "Trace.generate: classes < 1";
  let rng = Random.State.make [| 0xf1ee7; seed |] in
  let cdf = zipf_cdf ~s:m.zipf_s ~n:m.hot_keys in
  let out = ref [] in
  let n = ref 0 in
  let cold = ref 0 in
  let base = ref 0 in
  List.iter
    (fun p ->
      let cycles =
        match p with
        | Steady { cycles; _ } | Ramp { cycles; _ } | Burst { cycles; _ } ->
            cycles
      in
      for c = 0 to cycles - 1 do
        let lambda = rate_at p c in
        if lambda > 0. then
          for _ = 1 to poisson_draw rng lambda do
            let hot = Random.State.float rng 1.0 < m.hot_fraction in
            let payload =
              if hot then
                hot_payload m (zipf_draw cdf (Random.State.float rng 1.0))
              else begin
                incr cold;
                let size =
                  pareto_size rng ~alpha:m.size_alpha ~max_size:m.max_size
                in
                Printf.sprintf "cold-%d:%s" !cold (String.make size 'c')
              end
            in
            let cls =
              if m.classes = 1 then 0 else Random.State.int rng m.classes
            in
            out := { arrival = !base + c; payload; cls } :: !out;
            incr n
          done
      done;
      base := !base + cycles)
    phases;
  let arr = Array.of_list (List.rev !out) in
  (* rev keeps draw order; arrivals are already non-decreasing *)
  arr

let presets =
  [ ("steady", "constant rate, 2000 cycles");
    ("diurnal", "ramp up / plateau / ramp down over 3000 cycles");
    ("burst", "low base with periodic 8x bursts, 2400 cycles");
    ("flash", "quiet baseline with one sustained 20x flash crowd") ]

let scale_rates = scale

let preset ?(scale = 1.0) name =
  let phases =
    match name with
    | "steady" -> [ Steady { cycles = 2000; rate = 0.2 } ]
    | "diurnal" ->
        [ Ramp { cycles = 1000; rate0 = 0.02; rate1 = 0.3 };
          Steady { cycles = 1000; rate = 0.3 };
          Ramp { cycles = 1000; rate0 = 0.3; rate1 = 0.02 } ]
    | "burst" ->
        [ Burst
            { cycles = 2400; base = 0.05; peak = 0.4; period = 400; width = 60 }
        ]
    | "flash" ->
        [ Steady { cycles = 800; rate = 0.05 };
          Steady { cycles = 400; rate = 1.0 };
          Steady { cycles = 800; rate = 0.05 } ]
    | _ ->
        invalid_arg
          (Printf.sprintf "Trace.preset: unknown preset %S (have: %s)" name
             (String.concat ", " (List.map fst presets)))
  in
  if scale = 1.0 then phases else scale_rates scale phases

(* ---- trace files ---- *)

let is_space c = c = ' ' || c = '\t'

let split_fields line =
  let n = String.length line in
  let rec go i acc =
    if i >= n then List.rev acc
    else if is_space line.[i] then go (i + 1) acc
    else
      let j = ref i in
      while !j < n && not (is_space line.[!j]) do incr j done;
      go !j (String.sub line i (!j - i) :: acc)
  in
  go 0 []

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let out = ref [] and lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let line =
             match String.index_opt line '#' with
             | Some i -> String.sub line 0 i
             | None -> line
           in
           match split_fields line with
           | [] -> ()
           | [ a; payload ] | [ a; payload; _ ] as fields -> (
               let cls =
                 match fields with
                 | [ _; _; c ] -> (
                     match int_of_string_opt c with
                     | Some c when c >= 0 -> c
                     | _ ->
                         failwith
                           (Printf.sprintf "%s:%d: bad class field" path
                              !lineno))
                 | _ -> 0
               in
               match int_of_string_opt a with
               | Some arrival when arrival >= 0 ->
                   out := { arrival; payload; cls } :: !out
               | _ ->
                   failwith
                     (Printf.sprintf "%s:%d: bad arrival field" path !lineno))
           | _ ->
               failwith
                 (Printf.sprintf
                    "%s:%d: expected 'arrival payload [class]'" path !lineno)
         done
       with End_of_file -> ());
      let arr = Array.of_list (List.rev !out) in
      Array.stable_sort (fun a b -> compare a.arrival b.arrival) arr;
      arr)

let to_file path reqs =
  Array.iter
    (fun r ->
      if String.exists (fun c -> is_space c || c = '\n') r.payload then
        invalid_arg "Trace.to_file: payload contains whitespace")
    reqs;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "# arrival payload class\n";
      Array.iter
        (fun r -> Printf.fprintf oc "%d %s %d\n" r.arrival r.payload r.cls)
        reqs)
