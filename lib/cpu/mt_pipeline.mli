(** The multithreaded pipelined elastic processor of paper Section
    V.B: five MEB pipeline stages, per-thread PC and register file,
    variable-latency instruction memory / execute / data memory, and a
    one-instruction-per-thread scoreboard (fetch sets it, writeback
    clears it), so threads hide each other's latencies without
    intra-thread hazards.

    Exported probes: ["halted_all"], ["halted_vec"], ["retired_total"],
    per-thread ["retired<i>"], ["wb_fire"].  The register file and the
    two memories are Memory nodes (block RAMs — excluded from LE
    counts as in the paper's Table I). *)

module S := Hw.Signal

type config = {
  threads : int;
  kind : Melastic.Meb.kind;
  imem_size : int;
  dmem_size : int;
  imem_latency : Melastic.Mt_varlat.latency;
  exe_latency : Melastic.Mt_varlat.latency;
  mem_latency : Melastic.Mt_varlat.latency;
  start_pcs : int array;
  placement : Melastic.Placement.t option;
      (** overrides kind/stages of the {!retime_sites} (default: one
          stage of [kind] each — the historical uniform placement) *)
}

val default_config : threads:int -> config
(** Reduced MEBs, 1 Ki-word memories, fixed single-cycle units, all
    threads starting at PC 0, no placement overrides. *)

val retime_sites : Melastic.Placement.site list
(** The five pipeline-register sites (["meb0"].. ["meb4"]; min 1 stage
    each — MEB0's buffer state is the fetch arbiter's ready signal and
    the rest decouple the variable-latency units).  Probes and the
    scoreboard machinery are protocol-bearing and are not sites. *)

type t = {
  config : config;
  imem : S.memory;
  dmem : S.memory;
  regfile : S.memory;
}

val create :
  ?config_name:string -> ?probes:bool -> ?serve:bool -> S.builder -> config -> t
(** [probes] (default false) installs {!Melastic.Mt_channel.probe}
    taps ["cpu_fetch"], ["cpu_mem"] and ["cpu_wb"] on the fetch,
    EX→MEM and writeback channels for the runtime protocol
    monitors.

    [serve] (default false) adds the host job-control interface used
    by the serving engine ({!Serve_cpu}): inputs ["restart"] /
    ["kill"] (one bit per thread) and ["restart_pc"], plus a
    ["busy_vec"] output mirroring the scoreboard.  In serve mode every
    thread powers on halted; pulsing [restart(i)] for one cycle loads
    [restart_pc] into the thread's PC and clears its halted bit, and
    pulsing [kill(i)] parks the thread halted (in-flight instructions
    drain normally).  Host contract: assert [restart(i)] only while
    thread [i] is halted and not busy — otherwise a retiring
    instruction's PC writeback races the load.  Off by default so the
    Table I designs are unchanged. *)

val circuit : ?probes:bool -> ?serve:bool -> config -> Hw.Circuit.t * t

(** {1 Testbench helpers} *)

val load_program : Hw.Sim.t -> t -> int list -> unit
val run_until_halted : Hw.Sim.t -> limit:int -> int option
(** Cycles until every thread halted, or [None] at the limit. *)

val read_reg : Hw.Sim.t -> t -> thread:int -> reg:int -> int
val read_dmem : Hw.Sim.t -> t -> int -> int
