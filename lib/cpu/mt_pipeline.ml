(* The multithreaded pipelined elastic processor of Section V.B.

   Every pipeline register is an MEB that independently selects which
   thread to promote at each stage; each thread has a private program
   counter and register-file copy; instruction memory, data memory and
   the execution unit are variable-latency units (Mt_varlat).  A thread
   keeps one instruction in flight (scoreboard bit set at fetch,
   cleared at writeback), which is how the paper's fine-grained
   multithreading hides latencies without intra-thread hazards.

   Stage plan (5 MEBs, matching the paper's table):

     fetch-arb -> MEB0 -> IMEM^ -> MEB1 -> DECODE -> MEB2 -> EX^ ->
     MEB3 -> MEM^ -> MEB4 -> WB          [^ = variable latency]

   Token layouts (LSB-first fields):
     MEB0 : pc[14]
     MEB1 : pc[14] instr[32]
     MEB2 : pc[14] instr[32] a[32] bv[32]
     MEB3 : next_pc[14] instr[32] alu[32] store[32]
     MEB4 : next_pc[14] instr[32] result[32]

   The register file and the two memories are Memory nodes — block
   RAMs, excluded from the LE counts exactly as the paper excludes
   them from Table I. *)

module S = Hw.Signal
module Mc = Melastic.Mt_channel

type config = {
  threads : int;
  kind : Melastic.Meb.kind;
  imem_size : int;
  dmem_size : int;
  imem_latency : Melastic.Mt_varlat.latency;
  exe_latency : Melastic.Mt_varlat.latency;
  mem_latency : Melastic.Mt_varlat.latency;
  start_pcs : int array;
  placement : Melastic.Placement.t option;
}

let default_config ~threads =
  { threads;
    kind = Melastic.Meb.Reduced;
    imem_size = 1024;
    dmem_size = 1024;
    imem_latency = Melastic.Mt_varlat.Fixed 0;
    exe_latency = Melastic.Mt_varlat.Fixed 0;
    mem_latency = Melastic.Mt_varlat.Fixed 0;
    start_pcs = Array.make threads 0;
    placement = None }

(* The five pipeline-register sites of the stage plan.  Each needs at
   least one stage: MEB0's per-thread buffer state is the fetch
   arbiter's ready, and the others keep the variable-latency units
   decoupled.  Probes and the scoreboard/halt machinery are
   protocol-bearing, not sites. *)
let retime_sites =
  List.init 5 (fun i ->
      Melastic.Placement.site ~min_stages:1 (Printf.sprintf "meb%d" i))

type t = {
  config : config;
  imem : S.memory;
  dmem : S.memory;
  regfile : S.memory;
}

let pc_w = Isa.pc_width

let field b data ~hi ~lo = S.select b data ~hi ~lo

(* Opcode one-hot helpers over the 6-bit opcode field. *)
let is_op b op_field op = S.eq_const b op_field (Isa.opcode_value op)

let is_any b op_field ops =
  S.or_reduce b (List.map (is_op b op_field) ops)

let create ?(config_name = "cpu") ?(probes = false) ?(serve = false) b config =
  ignore config_name;
  let n = config.threads in
  let tw = max 1 (S.clog2 n) in
  (* Pipeline stages are Component stages: every pipeline register is
     an MEB, probes are probe_if taps, and the variable-latency units
     are wrapped operators — the stage plan above is then literally a
     [Component.pipe]. *)
  (* A pipeline-register site elaborates per the config's placement
     (kind + stage count; stage 0 keeps the site name).  Occupancy
     exports ride the probes flag, as in the MD5 loop. *)
  let meb name =
    let default = { Melastic.Placement.kind = config.kind; stages = 1 } in
    let cfg =
      match config.placement with
      | None -> default
      | Some p -> Melastic.Placement.find p ~name ~default
    in
    fun bb ch ->
      Melastic.Component.pipe bb
        (List.init (max 1 cfg.Melastic.Placement.stages) (fun k ->
             Melastic.Component.buffer
               ~name:(if k = 0 then name else Printf.sprintf "%s_s%d" name k)
               ~policy:Melastic.Policy.Ready_aware
               ~kind:cfg.Melastic.Placement.kind ~export_occupancy:probes ()))
        ch
  in
  let tap name = Melastic.Component.probe_if probes ~name in
  let imem =
    S.Memory.create b ~name:"imem" ~size:config.imem_size ~width:32 ()
  in
  let dmem =
    S.Memory.create b ~name:"dmem" ~size:config.dmem_size ~width:32 ()
  in
  let regfile =
    S.Memory.create b ~name:"regfile" ~size:(n * Isa.num_regs) ~width:32 ()
  in
  (* ---- Front end: per-thread PC + scoreboard, fetch arbiter ---- *)
  let busy = Array.init n (fun _ -> S.wire b 1) in
  let halted = Array.init n (fun _ -> S.wire b 1) in
  let pcs = Array.init n (fun _ -> S.wire b pc_w) in
  (* Host job-control interface (the serving engine's slot lifecycle).
     Absent by default so the Table I designs are unchanged.  [restart]
     re-launches a thread at [restart_pc] (host contract: only while
     the thread is halted and not busy — a racing writeback would
     otherwise overwrite the loaded PC); [kill] parks a thread halted
     so its slot can be reclaimed (any in-flight instruction drains
     normally first).  In serve mode every thread powers on halted:
     slots run only what the host launches. *)
  let restart_in, kill_in, restart_pc_in =
    if serve then
      ( S.input b "restart" n,
        S.input b "kill" n,
        S.input b "restart_pc" pc_w )
    else (S.zero b n, S.zero b n, S.zero b pc_w)
  in
  let restart_bit i = if serve then S.bit b restart_in i else S.gnd b in
  let kill_bit i = if serve then S.bit b kill_in i else S.gnd b in
  (* The fetch channel's readys come from MEB0's per-thread buffer
     state; a thread competes for fetch only when it is idle, running,
     and its MEB0 slot can take the token. *)
  let fetch_ch = Mc.wires b ~threads:n ~width:pc_w in
  let req =
    S.concat_msb b
      (List.rev
         (List.init n (fun i ->
              S.land_ b fetch_ch.Mc.readys.(i)
                (S.land_ b (S.lnot b busy.(i)) (S.lnot b halted.(i))))))
  in
  let advance = S.wire b 1 in
  let rr = Arbiter.round_robin b ~advance req in
  S.assign advance rr.Arbiter.any_grant;
  let grant = rr.Arbiter.grant in
  let fetch_fire = Array.init n (fun i -> S.bit b grant i) in
  let pc_mux = S.mux b rr.Arbiter.grant_index (Array.to_list pcs) in
  Array.iteri (fun i v -> S.assign v fetch_fire.(i)) fetch_ch.Mc.valids;
  S.assign fetch_ch.Mc.data pc_mux;
  (* ---- IMEM: variable-latency instruction fetch ---- *)
  let imem_stage =
    Melastic.Component.wrap
      (fun b ch ->
        Melastic.Mt_varlat.create ~name:"imem_vl" b ch
          ~latency:config.imem_latency
          ~f:(fun b pc ->
            let addr = S.uresize b pc (S.clog2 config.imem_size) in
            S.concat_msb b [ S.Memory.read_async b imem ~addr; pc ]))
      (fun v -> v.Melastic.Mt_varlat.out)
  in
  let d_in =
    Melastic.Component.pipe b
      [ tap "cpu_fetch"; meb "meb0"; imem_stage; meb "meb1" ]
      fetch_ch
  in
  (* ---- DECODE: field extraction + register-file read ---- *)
  let d_pc = field b d_in.Mc.data ~hi:(pc_w - 1) ~lo:0 in
  let d_instr = field b d_in.Mc.data ~hi:(pc_w + 31) ~lo:pc_w in
  let d_thread = S.uresize b (Mc.active_thread b d_in) tw in
  let rf_addr r = S.concat_msb b [ d_thread; r ] in
  let d_rs = field b d_instr ~hi:21 ~lo:18 in
  let d_rt = field b d_instr ~hi:17 ~lo:14 in
  let read_reg r =
    let v = S.Memory.read_async b regfile ~addr:(rf_addr r) in
    S.mux2 b (S.eq_const b r 0) (S.zero b 32) v
  in
  let d_a = read_reg d_rs in
  let d_bv = read_reg d_rt in
  let decode_out =
    { d_in with Mc.data = S.concat_msb b [ d_bv; d_a; d_instr; d_pc ] }
  in
  (* ---- EX: ALU, branch resolution, next-PC ---- *)
  let exe_stage =
    Melastic.Component.wrap
      (fun b ch ->
        Melastic.Mt_varlat.create ~name:"exe_vl" b ch
          ~latency:config.exe_latency
          ~f:(fun b data ->
        let pc = field b data ~hi:(pc_w - 1) ~lo:0 in
        let instr = field b data ~hi:(pc_w + 31) ~lo:pc_w in
        let a = field b data ~hi:(pc_w + 63) ~lo:(pc_w + 32) in
        let bv = field b data ~hi:(pc_w + 95) ~lo:(pc_w + 64) in
        let op = field b instr ~hi:31 ~lo:26 in
        let imm = field b instr ~hi:13 ~lo:0 in
        let imm_s = S.sresize b imm 32 in
        let imm_z = S.uresize b imm 32 in
        let uses_imm =
          is_any b op [ Isa.ADDI; Isa.ANDI; Isa.ORI; Isa.XORI; Isa.SLTI;
                        Isa.LW; Isa.SW ]
        in
        let zero_ext = is_any b op [ Isa.ANDI; Isa.ORI; Isa.XORI ] in
        let imm_ext = S.mux2 b zero_ext imm_z imm_s in
        let opb = S.mux2 b uses_imm imm_ext bv in
        let shamt = field b bv ~hi:4 ~lo:0 in
        let add = S.add b a opb in
        let sub = S.sub b a opb in
        let slt = S.uresize b (S.slt b a opb) 32 in
        let sltu = S.uresize b (S.ult b a opb) 32 in
        let mul = S.uresize b (S.mul b a bv) 32 in
        let link = S.uresize b (S.add b pc (S.of_int b ~width:pc_w 1)) 32 in
        let lui = S.sll b imm_z 18 in
        (* Result select: a chain over the opcode classes. *)
        let sel v code rest = S.mux2 b (is_op b op code) v rest in
        let alu =
          sel sub Isa.SUB
            (sel (S.land_ b a opb) Isa.AND
               (sel (S.land_ b a opb) Isa.ANDI
                  (sel (S.lor_ b a opb) Isa.OR
                     (sel (S.lor_ b a opb) Isa.ORI
                        (sel (S.lxor_ b a opb) Isa.XOR
                           (sel (S.lxor_ b a opb) Isa.XORI
                              (sel slt Isa.SLT
                                 (sel slt Isa.SLTI
                                    (sel sltu Isa.SLTU
                                       (sel (S.sll_dyn b a shamt) Isa.SLL
                                          (sel (S.srl_dyn b a shamt) Isa.SRL
                                             (sel (S.sra_dyn b a shamt) Isa.SRA
                                                (sel mul Isa.MUL
                                                   (sel lui Isa.LUI
                                                      (sel link Isa.JAL add)))))))))))))))
        in
        let eq = S.eq b a bv in
        let lt = S.slt b a bv in
        let taken =
          S.or_reduce b
            [ S.land_ b (is_op b op Isa.BEQ) eq;
              S.land_ b (is_op b op Isa.BNE) (S.lnot b eq);
              S.land_ b (is_op b op Isa.BLT) lt;
              S.land_ b (is_op b op Isa.BGE) (S.lnot b lt) ]
        in
        let pc_plus1 = S.add b pc (S.of_int b ~width:pc_w 1) in
        let branch_target = S.add b pc (S.uresize b imm pc_w) in
        let jump_target = S.uresize b imm pc_w in
        let next_pc =
          S.mux2 b (is_any b op [ Isa.J; Isa.JAL ]) jump_target
            (S.mux2 b (is_op b op Isa.JR)
               (S.uresize b a pc_w)
               (S.mux2 b taken branch_target pc_plus1))
        in
            S.concat_msb b [ bv; alu; instr; next_pc ]))
      (fun v -> v.Melastic.Mt_varlat.out)
  in
  (* ---- MEM: variable-latency data memory (protocol-checker tap
     between EX and MEM) ---- *)
  let mem_in =
    Melastic.Component.pipe b
      [ meb "meb2"; exe_stage; meb "meb3"; tap "cpu_mem" ]
      decode_out
  in
  let mem_op = field b mem_in.Mc.data ~hi:(pc_w + 31) ~lo:(pc_w + 26) in
  let mem_alu = field b mem_in.Mc.data ~hi:(pc_w + 63) ~lo:(pc_w + 32) in
  let mem_store = field b mem_in.Mc.data ~hi:(pc_w + 95) ~lo:(pc_w + 64) in
  let daddr_w = S.clog2 config.dmem_size in
  let mem_vl =
    Melastic.Mt_varlat.create ~name:"mem_vl" b mem_in ~latency:config.mem_latency
      ~f:(fun b data ->
        let next_pc = field b data ~hi:(pc_w - 1) ~lo:0 in
        let instr = field b data ~hi:(pc_w + 31) ~lo:pc_w in
        let op = field b instr ~hi:31 ~lo:26 in
        let alu = field b data ~hi:(pc_w + 63) ~lo:(pc_w + 32) in
        let load =
          S.Memory.read_async b dmem ~addr:(S.uresize b alu daddr_w)
        in
        let result = S.mux2 b (is_op b op Isa.LW) load alu in
        S.concat_msb b [ result; instr; next_pc ])
  in
  (* The store commits the cycle MEM accepts the token. *)
  S.Memory.write b dmem
    ~we:(S.land_ b mem_vl.Melastic.Mt_varlat.accept (is_op b mem_op Isa.SW))
    ~addr:(S.uresize b mem_alu daddr_w)
    ~data:mem_store;
  (* ---- WB: register write, PC update, scoreboard clear ---- *)
  let wb =
    Melastic.Component.pipe b
      [ meb "meb4"; tap "cpu_wb" ]
      mem_vl.Melastic.Mt_varlat.out
  in
  Array.iter (fun r -> S.assign r (S.vdd b)) wb.Mc.readys;
  let wb_any = Mc.any_valid b wb in
  let wb_thread = S.uresize b (Mc.active_thread b wb) tw in
  let wb_next_pc = field b wb.Mc.data ~hi:(pc_w - 1) ~lo:0 in
  let wb_instr = field b wb.Mc.data ~hi:(pc_w + 31) ~lo:pc_w in
  let wb_result = field b wb.Mc.data ~hi:(pc_w + 63) ~lo:(pc_w + 32) in
  let wb_op = field b wb_instr ~hi:31 ~lo:26 in
  let wb_rd = field b wb_instr ~hi:25 ~lo:22 in
  let writes =
    is_any b wb_op (List.filter Isa.writes_register Isa.all_opcodes)
  in
  S.Memory.write b regfile
    ~we:
      (S.land_ b wb_any
         (S.land_ b writes (S.lnot b (S.eq_const b wb_rd 0))))
    ~addr:(S.concat_msb b [ wb_thread; wb_rd ])
    ~data:wb_result;
  let is_halt = is_op b wb_op Isa.HALT in
  (* Per-thread architectural state. *)
  Array.iteri
    (fun i pc_wire ->
      let fire = wb.Mc.valids.(i) in
      let pc_reg =
        (* [restart] wins over a (host-forbidden) same-cycle writeback:
           its loaded PC is the slot's new program. *)
        S.reg b
          ~enable:
            (S.lor_ b (restart_bit i) (S.land_ b fire (S.lnot b is_halt)))
          ~init:(Bits.of_int ~width:pc_w config.start_pcs.(i))
          (S.mux2 b (restart_bit i) restart_pc_in wb_next_pc)
      in
      ignore (S.set_name pc_reg (Printf.sprintf "pc%d" i));
      S.assign pc_wire pc_reg;
      let busy_reg =
        S.reg_fb b ~width:1 (fun q ->
            S.mux2 b fetch_fire.(i) (S.vdd b) (S.mux2 b fire (S.gnd b) q))
      in
      ignore (S.set_name busy_reg (Printf.sprintf "busy%d" i));
      S.assign busy.(i) busy_reg;
      let halted_reg =
        (* restart clears, kill sets, a retiring HALT sets; in serve
           mode the power-on value is halted so unlaunched slots stay
           quiescent instead of executing imem garbage from PC 0. *)
        S.reg_fb b ~width:1
          ~init:(Bits.of_int ~width:1 (if serve then 1 else 0))
          (fun q ->
            S.mux2 b (restart_bit i) (S.gnd b)
              (S.lor_ b (kill_bit i)
                 (S.lor_ b q (S.land_ b fire is_halt))))
      in
      ignore (S.set_name halted_reg (Printf.sprintf "halted%d" i));
      S.assign halted.(i) halted_reg;
      let retired =
        S.reg_fb b ~width:32 (fun q ->
            S.mux2 b fire (S.add b q (S.of_int b ~width:32 1)) q)
      in
      ignore (S.output b (Printf.sprintf "retired%d" i) retired))
    pcs;
  ignore
    (S.output b "halted_all"
       (S.and_reduce b (Array.to_list halted)));
  ignore
    (S.output b "halted_vec"
       (S.concat_msb b (List.rev (Array.to_list halted))));
  if serve then
    ignore
      (S.output b "busy_vec"
         (S.concat_msb b (List.rev (Array.to_list busy))));
  let total_retired =
    S.reg_fb b ~width:32 (fun q ->
        S.mux2 b wb_any (S.add b q (S.of_int b ~width:32 1)) q)
  in
  ignore (S.output b "retired_total" total_retired);
  ignore (S.output b "wb_fire" (S.concat_msb b (List.rev (Array.to_list wb.Mc.valids))));
  { config; imem; dmem; regfile }

(* Elaborate a standalone processor circuit. *)
let circuit ?probes ?serve config =
  let b = S.Builder.create () in
  let t = create ?probes ?serve b config in
  (Hw.Circuit.create
     ~name:(Printf.sprintf "cpu_%s_%dt" (Melastic.Meb.kind_to_string config.kind)
              config.threads)
     b,
   t)

(* ---- Testbench helpers ---- *)

let load_program sim t words =
  List.iteri
    (fun i w -> Hw.Sim.mem_write sim t.imem i (Bits.of_int ~width:32 (w land 0xffffffff)))
    words

let run_until_halted sim ~limit =
  let rec go n =
    if Hw.Sim.peek_bool sim "halted_all" then Some n
    else if n >= limit then None
    else begin
      Hw.Sim.cycle sim;
      go (n + 1)
    end
  in
  go 0

let read_reg sim t ~thread ~reg =
  Bits.to_int (Hw.Sim.mem_read sim t.regfile ((thread * Isa.num_regs) + reg))

let read_dmem sim t addr = Bits.to_int (Hw.Sim.mem_read sim t.dmem addr)
