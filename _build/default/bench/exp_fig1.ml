(* Fig. 1 reproduction: the same computation under (a) inelastic
   operation, (b) single-thread elasticity with a variable-latency
   unit, and (c) multithreaded elasticity where a second thread fills
   the idle slots.

   The computation is a 2-stage flow around one variable-latency unit.
   We report, per variant, the cycle-by-cycle trace of tokens crossing
   the output interface and the channel utilization — the paper's
   point being that (a) and (b) carry the same trace of valid data at
   different cycles, and (c) raises utilization by interleaving a
   second thread. *)

module S = Hw.Signal

let tag = Workload.Trace.encode_tag ~width:32

(* (a) Inelastic: a rigid registered pipeline clocked at the worst-case
   latency of the variable unit — it must wait [worst] cycles per item
   regardless of the actual latency. *)
let run_inelastic ~items ~worst =
  let outs = ref [] in
  let cycle = ref 0 in
  List.iter
    (fun seq ->
      cycle := !cycle + worst;
      outs := (!cycle, (0, seq)) :: !outs)
    (List.init items (fun i -> i));
  List.rev !outs

(* (b)/(c): an elastic flow around a Varlat-equipped MT pipeline with
   [threads] threads. *)
let run_elastic ~threads ~items ~seed =
  let b = S.Builder.create () in
  let src = Melastic.Mt_channel.source b ~name:"src" ~threads ~width:32 in
  let m0 = Melastic.Meb_reduced.create ~name:"m0" b src in
  let vl =
    Melastic.Mt_varlat.per_thread ~name:"vl" b m0.Melastic.Meb_reduced.out
      ~latency:(Melastic.Mt_varlat.Random { max_latency = 3; seed })
  in
  let m1 = Melastic.Meb_reduced.create ~name:"m1" b vl.Melastic.Mt_varlat.out in
  Melastic.Mt_channel.sink b ~name:"snk" m1.Melastic.Meb_reduced.out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width:32 in
  for t = 0 to threads - 1 do
    for i = 0 to items - 1 do
      Workload.Mt_driver.push d ~thread:t (tag ~thread:t ~seq:i)
    done
  done;
  ignore (Workload.Mt_driver.run_until_drained d ~limit:2000);
  List.map
    (fun e ->
      (e.Workload.Mt_driver.cycle, Workload.Trace.decode_tag e.Workload.Mt_driver.data))
    (Workload.Mt_driver.outputs d)

let row ~label events =
  ( label,
    fun c ->
      List.find_map
        (fun (cyc, (th, seq)) ->
          if cyc = c then
            Some (Printf.sprintf "%c%d" (Char.chr (Char.code 'A' + th)) seq)
          else None)
        events )

let run () =
  print_endline "=== Fig. 1: inelastic vs elastic vs multithreaded elastic ===";
  let items = 6 in
  let inelastic = run_inelastic ~items ~worst:4 in
  let elastic1 = run_elastic ~threads:1 ~items ~seed:5 in
  let elastic2 = run_elastic ~threads:2 ~items ~seed:5 in
  let span evs =
    List.fold_left (fun acc (c, _) -> max acc c) 0 evs + 1
  in
  let cycles = max (span inelastic) (max (span elastic1) (span elastic2)) in
  print_string
    (Workload.Trace.render_rows
       [ row ~label:"(a) inelastic" inelastic;
         row ~label:"(b) elastic" elastic1;
         row ~label:"(c) MT elastic" elastic2 ]
       ~cycles);
  (* Trace equivalence between (a) and (b): same per-thread sequence of
     values, different cycles — the definition the paper opens with. *)
  let values evs = List.map (fun (_, (th, seq)) -> (th, seq)) evs in
  let eq_ab =
    List.filter (fun (th, _) -> th = 0) (values elastic1) = values inelastic
  in
  let thread_a_mt = List.filter (fun (th, _) -> th = 0) (values elastic2) in
  Printf.printf "trace(a) == trace(b) per valid data: %b\n" eq_ab;
  Printf.printf "thread A's trace preserved in (c): %b\n"
    (thread_a_mt = values inelastic);
  let util evs = float_of_int (List.length evs) /. float_of_int (span evs) in
  Printf.printf
    "output utilization: elastic 1 thread %.2f -> MT elastic 2 threads %.2f\n\n"
    (util elastic1) (util elastic2)
