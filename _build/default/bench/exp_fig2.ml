(* Fig. 2 reproduction: the single-thread elastic protocol waveform —
   two EBs, a transfer happens exactly when valid and ready are both
   high; a stalled consumer makes [word2] persist on the channel. *)

module S = Hw.Signal

let run () =
  print_endline "=== Fig. 2: baseline elastic protocol (valid/ready handshake) ===";
  let b = S.Builder.create () in
  let src = Elastic.Channel.source b ~name:"src" ~width:8 in
  let eb1 = Elastic.Eb.create ~name:"eb1" b src in
  let mid = Elastic.Channel.label eb1.Elastic.Eb.out ~name:"ch" in
  let eb2 = Elastic.Eb.create ~name:"eb2" b mid in
  Elastic.Channel.sink b ~name:"snk" eb2.Elastic.Eb.out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let wave =
    Hw.Wave.attach sim
      ~signals:
        [ ("valid", mid.Elastic.Channel.valid);
          ("ready", mid.Elastic.Channel.ready);
          ("data", mid.Elastic.Channel.data) ]
  in
  let d = Workload.St_driver.create sim ~src:"src" ~snk:"snk" ~width:8 in
  (* word1, word2, word3 with a downstream stall in the middle, as in
     the paper's waveform. *)
  List.iter (Workload.St_driver.push_int d) [ 0xa1; 0xa2; 0xa3 ];
  Workload.St_driver.set_sink_ready d (fun c -> c < 3 || c >= 6);
  Workload.St_driver.run d 12;
  print_string (Hw.Wave.render wave);
  let out = List.map Bits.to_int (Workload.St_driver.output_data d) in
  Printf.printf "received (in order): %s\n"
    (String.concat " " (List.map (Printf.sprintf "%02x") out));
  Printf.printf "paper: transfer occurs iff valid && ready; measured: %s\n\n"
    (if out = [ 0xa1; 0xa2; 0xa3 ] then "same (all words, in order, across the stall)"
     else "MISMATCH")
