(* Ablations of the design choices DESIGN.md calls out:

   1. MEB cost scaling: standalone MEB area (32-bit payload) for
      S in {2,4,8,16}, full vs reduced — shows where the paper's
      savings come from (slots: 2S vs S+1) and that they grow with S.
   2. Payload-width scaling at S = 8: savings as the datapath widens.
   3. Arbitration-policy ablation: ready-aware vs valid-only grant
      throughput on a 2-stage pipeline under random per-thread sink
      stalls (ready-aware never wastes a granted slot). *)

module S = Hw.Signal
module Mc = Melastic.Mt_channel

let meb_circuit ~kind ~threads ~width =
  let b = S.Builder.create () in
  let src = Mc.source b ~name:"src" ~threads ~width in
  let m = Melastic.Meb.create ~kind b src in
  Mc.sink b ~name:"snk" m.Melastic.Meb.out;
  Hw.Circuit.create b

let area ~kind ~threads ~width =
  Fpga.Tech.les (Fpga.Tech.circuit_cost (meb_circuit ~kind ~threads ~width))

let policy_throughput ~policy ~seed =
  let threads = 4 in
  let b = S.Builder.create () in
  let src = Mc.source b ~name:"src" ~threads ~width:32 in
  let out, _ = Melastic.Meb.pipeline ~kind:Melastic.Meb.Reduced ~policy b ~stages:2 src in
  Mc.sink b ~name:"snk" out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width:32 in
  for t = 0 to threads - 1 do
    for i = 0 to 199 do Workload.Mt_driver.push_int d ~thread:t i done
  done;
  let st = Random.State.make [| seed |] in
  let script = Array.init 1000 (fun _ -> Array.init threads (fun _ -> Random.State.bool st)) in
  Workload.Mt_driver.set_sink_ready d (fun c t -> script.(c mod 1000).(t));
  Workload.Mt_driver.run d 400;
  float_of_int (List.length (Workload.Mt_driver.outputs d)) /. 400.0

let run () =
  print_endline "=== Ablation 1: standalone MEB area, 32-bit payload ===";
  Printf.printf "%-8s %-10s %-10s %-10s %-8s\n" "threads" "full(LE)" "reduced" "saving%"
    "slots 2S vs S+1";
  List.iter
    (fun s ->
      let f = area ~kind:Melastic.Meb.Full ~threads:s ~width:32 in
      let r = area ~kind:Melastic.Meb.Reduced ~threads:s ~width:32 in
      Printf.printf "%-8d %-10d %-10d %-10.1f %d vs %d\n" s f r
        (100.0 *. (1.0 -. (float_of_int r /. float_of_int f)))
        (2 * s) (s + 1))
    [ 2; 4; 8; 16 ];
  print_newline ();
  print_endline "=== Ablation 2: payload width at 8 threads ===";
  Printf.printf "%-8s %-10s %-10s %-10s\n" "width" "full(LE)" "reduced" "saving%";
  List.iter
    (fun w ->
      let f = area ~kind:Melastic.Meb.Full ~threads:8 ~width:w in
      let r = area ~kind:Melastic.Meb.Reduced ~threads:8 ~width:w in
      Printf.printf "%-8d %-10d %-10d %-10.1f\n" w f r
        (100.0 *. (1.0 -. (float_of_int r /. float_of_int f))))
    [ 8; 32; 64; 128 ];
  print_newline ();
  print_endline "=== Ablation 3: arbitration policy under random sink stalls ===";
  List.iter
    (fun (policy, name) ->
      let avg =
        List.fold_left (fun acc seed -> acc +. policy_throughput ~policy ~seed) 0.0
          [ 3; 17; 91 ]
        /. 3.0
      in
      Printf.printf "%-12s total channel throughput: %.3f tokens/cycle\n" name avg)
    [ (Melastic.Policy.Ready_aware, "ready-aware"); (Melastic.Policy.Valid_only, "valid-only") ];
  print_newline ()
