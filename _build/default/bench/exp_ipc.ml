(* Extension experiment: processor utilization vs. thread count.

   The paper's introduction motivates multithreading as "maximizing
   hardware utilization and minimizing the idle cycles that naturally
   arise from variable latency operations".  This sweep measures it on
   the Section V.B processor: instructions per cycle for 1..8 threads
   with variable-latency units, for both MEB kinds. *)

let program ~threads =
  let buf = Buffer.create 256 in
  for t = 0 to threads - 1 do
    Buffer.add_string buf (Printf.sprintf "addi r10, r0, %d\nj main\n" (t * 8))
  done;
  Buffer.add_string buf
    "main: addi r3, r0, 25\n\
     loop: addi r1, r1, 7\n\
     xor r2, r2, r1\n\
     sw r2, 0(r10)\n\
     addi r3, r3, -1\n\
     bne r3, r0, loop\n\
     halt\n";
  Buffer.contents buf

let measure ~kind ~threads =
  let text = program ~threads in
  let words = Cpu.Asm.assemble_words text in
  let start_pcs = Array.init threads (fun t -> 2 * t) in
  let config =
    { (Cpu.Mt_pipeline.default_config ~threads) with
      Cpu.Mt_pipeline.kind;
      start_pcs;
      imem_latency = Melastic.Mt_varlat.Random { max_latency = 2; seed = 7 };
      exe_latency = Melastic.Mt_varlat.Random { max_latency = 3; seed = 11 };
      mem_latency = Melastic.Mt_varlat.Random { max_latency = 3; seed = 5 } }
  in
  let circuit, t = Cpu.Mt_pipeline.circuit config in
  let sim = Hw.Sim.create circuit in
  Cpu.Mt_pipeline.load_program sim t words;
  Hw.Sim.settle sim;
  match Cpu.Mt_pipeline.run_until_halted sim ~limit:200000 with
  | None -> nan
  | Some cycles ->
    float_of_int (Hw.Sim.peek_int sim "retired_total") /. float_of_int cycles

let run () =
  print_endline
    "=== Extension: processor IPC vs thread count (variable-latency units) ===";
  Printf.printf "%-10s %-8s %-10s %-12s\n" "kind" "threads" "IPC" "speedup vs 1T";
  List.iter
    (fun kind ->
      let base = measure ~kind ~threads:1 in
      List.iter
        (fun threads ->
          let ipc = measure ~kind ~threads in
          Printf.printf "%-10s %-8d %-10.3f %-12.2f\n"
            (Melastic.Meb.kind_to_string kind) threads ipc (ipc /. base))
        [ 1; 2; 4; 8 ])
    [ Melastic.Meb.Full; Melastic.Meb.Reduced ];
  print_endline
    "paper (qualitative): multithreading fills the idle slots left by\n\
     variable-latency units; utilization grows with the thread count.";
  print_newline ()
