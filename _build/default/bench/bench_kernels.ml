(* Bechamel microbenchmarks of the kernels behind each reproduced
   table/figure: one Test.make per experiment's simulation substrate.
   These measure host-side simulator performance (ns per simulated
   cycle), not the modelled hardware. *)

open Bechamel
open Toolkit

module S = Hw.Signal
module Mc = Melastic.Mt_channel

let meb_pipeline_sim kind =
  let b = S.Builder.create () in
  let src = Mc.source b ~name:"src" ~threads:8 ~width:32 in
  let out, _ = Melastic.Meb.pipeline ~kind b ~stages:2 src in
  Mc.sink b ~name:"snk" out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  Hw.Sim.poke_int sim "snk_ready" 255;
  sim

let md5_sim () =
  let sim = Hw.Sim.create (Md5.Md5_circuit.circuit ~kind:Melastic.Meb.Reduced ~threads:8 ()) in
  Hw.Sim.poke_int sim "digest_ready" 255;
  sim

let cpu_sim () =
  let config = Cpu.Mt_pipeline.default_config ~threads:8 in
  let circuit, t = Cpu.Mt_pipeline.circuit config in
  let sim = Hw.Sim.create circuit in
  (* An infinite loop keeps every stage busy while we benchmark. *)
  Cpu.Mt_pipeline.load_program sim t
    (Cpu.Asm.assemble_words "loop: addi r1, r1, 1\nsw r1, 0(r2)\nj loop\n");
  sim

let tests () =
  let cycle_test name sim =
    Test.make ~name (Staged.stage (fun () -> Hw.Sim.cycle sim))
  in
  [ Test.make ~name:"bits: 128-bit add"
      (let a = Bits.of_hex_string ~width:128 "deadbeefcafebabe0123456789abcdef" in
       let b = Bits.of_hex_string ~width:128 "0123456789abcdefdeadbeefcafebabe" in
       Staged.stage (fun () -> ignore (Bits.add a b)));
    cycle_test "sim cycle: fig5 MEB pipeline (full, 8T)" (meb_pipeline_sim Melastic.Meb.Full);
    cycle_test "sim cycle: fig5 MEB pipeline (reduced, 8T)"
      (meb_pipeline_sim Melastic.Meb.Reduced);
    cycle_test "sim cycle: table1 MD5 (reduced, 8T)" (md5_sim ());
    cycle_test "sim cycle: table1 CPU (reduced, 8T)" (cpu_sim ());
    Test.make ~name:"md5 reference digest"
      (Staged.stage (fun () -> ignore (Md5.Md5_ref.digest "benchmark message")));
    Test.make ~name:"table1 area model: MEB 8T"
      (let b = S.Builder.create () in
       let src = Mc.source b ~name:"src" ~threads:8 ~width:32 in
       let m = Melastic.Meb.create ~kind:Melastic.Meb.Reduced b src in
       Mc.sink b ~name:"snk" m.Melastic.Meb.out;
       let c = Hw.Circuit.create b in
       Staged.stage (fun () -> ignore (Fpga.Tech.circuit_cost c))) ]

let run () =
  print_endline "=== Bechamel: simulator kernel microbenchmarks ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-45s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-45s (no estimate)\n" name)
        results)
    (tests ());
  print_newline ()
