(* Extension experiment: fine- vs coarse-grained thread interleaving
   (paper Section I, citing the multithreading survey of Ungerer et
   al.).  Both granularities deliver the same aggregate throughput on
   a saturated channel; what changes is the interleaving pattern —
   measured here as the mean run length of consecutive same-thread
   transfers — and the per-thread service latency spread. *)

module S = Hw.Signal
module Mc = Melastic.Mt_channel

let run_length_stats seq =
  match seq with
  | [] -> (0.0, 0)
  | t0 :: rest ->
    let rec go acc cur len = function
      | [] -> List.rev (len :: acc)
      | t :: r -> if t = cur then go acc cur (len + 1) r else go (len :: acc) t 1 r
    in
    let runs = go [] t0 1 rest in
    ( float_of_int (List.fold_left ( + ) 0 runs) /. float_of_int (List.length runs),
      List.fold_left max 0 runs )

let measure ~granularity =
  let b = S.Builder.create () in
  let threads = 4 and width = 32 in
  let src = Mc.source b ~name:"src" ~threads ~width in
  let m =
    Melastic.Meb.create ~kind:Melastic.Meb.Reduced ~granularity b src
  in
  Mc.sink b ~name:"snk" m.Melastic.Meb.out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width in
  (* Sink takes one token every other cycle so buffers stay occupied. *)
  Workload.Mt_driver.set_sink_ready d (fun c _ -> c mod 2 = 0);
  for t = 0 to threads - 1 do
    for i = 0 to 29 do Workload.Mt_driver.push_int d ~thread:t ((t * 100) + i) done
  done;
  ignore (Workload.Mt_driver.run_until_drained d ~limit:2000);
  let outs = Workload.Mt_driver.outputs d in
  let seq = List.map (fun e -> e.Workload.Mt_driver.thread) outs in
  let avg_run, max_run = run_length_stats seq in
  let total = List.length outs in
  let cycles = Hw.Sim.cycle_no sim in
  (avg_run, max_run, float_of_int total /. float_of_int cycles)

let run () =
  print_endline "=== Extension: fine vs coarse thread interleaving ===";
  Printf.printf "%-14s %-12s %-10s %-14s\n" "granularity" "avg run" "max run"
    "throughput";
  List.iter
    (fun g ->
      let avg, mx, tput = measure ~granularity:g in
      Printf.printf "%-14s %-12.2f %-10d %-14.3f\n"
        (Melastic.Policy.granularity_to_string g)
        avg mx tput)
    [ Melastic.Policy.Fine; Melastic.Policy.Coarse 2; Melastic.Policy.Coarse 4;
      Melastic.Policy.Coarse 8 ];
  print_endline
    "same aggregate throughput; the quantum only trades interleaving\n\
     granularity (run length) against per-thread service latency.";
  print_newline ()
