bench/exp_granularity.ml: Hw List Melastic Printf Workload
