bench/exp_throughput.ml: Float Fun Hw List Melastic Printf Workload
