bench/exp_ablation.ml: Array Fpga Hw List Melastic Printf Random Workload
