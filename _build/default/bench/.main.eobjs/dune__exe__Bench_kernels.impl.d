bench/bench_kernels.ml: Analyze Bechamel Benchmark Bits Cpu Fpga Hashtbl Hw Instance List Md5 Measure Melastic Printf Staged Test Time Toolkit
