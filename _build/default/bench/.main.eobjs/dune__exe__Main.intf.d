bench/main.mli:
