bench/main.ml: Array Bench_kernels Exp_ablation Exp_fig1 Exp_fig2 Exp_fig5 Exp_granularity Exp_ipc Exp_table1 Exp_throughput List String Sys
