bench/exp_table1.ml: Cpu Format Fpga Hw List Md5 Melastic Printf
