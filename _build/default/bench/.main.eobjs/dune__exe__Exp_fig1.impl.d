bench/exp_fig1.ml: Char Hw List Melastic Printf Workload
