bench/exp_fig2.ml: Bits Elastic Hw List Printf String Workload
