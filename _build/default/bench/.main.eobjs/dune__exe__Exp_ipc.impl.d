bench/exp_ipc.ml: Array Buffer Cpu Hw List Melastic Printf
