bench/exp_fig5.ml: Hw Melastic Printf Workload
