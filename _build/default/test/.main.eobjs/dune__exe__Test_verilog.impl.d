test/test_verilog.ml: Alcotest Bits Cpu Hashtbl Hw List Md5 Melastic String
