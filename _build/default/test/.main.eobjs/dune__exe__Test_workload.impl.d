test/test_workload.ml: Alcotest Bits Elastic Filename Hw List Melastic String Sys Workload
