test/test_bits.ml: Alcotest Bits List Printf QCheck QCheck_alcotest
