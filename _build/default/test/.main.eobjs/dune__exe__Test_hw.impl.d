test/test_hw.ml: Alcotest Bits Hashtbl Hw List Printf QCheck QCheck_alcotest String
