test/test_fpga.ml: Alcotest Fpga Hw List Melastic Printf QCheck QCheck_alcotest
