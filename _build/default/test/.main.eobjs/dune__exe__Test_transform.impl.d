test/test_transform.ml: Alcotest Cpu Fpga Hw List Md5 Melastic QCheck QCheck_alcotest Random
