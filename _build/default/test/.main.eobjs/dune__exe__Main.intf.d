test/main.mli:
