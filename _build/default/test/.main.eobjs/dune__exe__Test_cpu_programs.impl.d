test/test_cpu_programs.ml: Alcotest Array Buffer Cpu Hw List Melastic Printf
