test/test_arbiter.ml: Alcotest Arbiter Array Hw List Printf QCheck QCheck_alcotest
