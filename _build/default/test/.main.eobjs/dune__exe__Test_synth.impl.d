test/test_synth.ml: Alcotest Bits Hw List Melastic Printf String Synth Workload
