test/test_protocol.ml: Alcotest Array Bits Hw List Melastic Printf Queue Workload
