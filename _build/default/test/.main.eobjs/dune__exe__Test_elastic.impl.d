test/test_elastic.ml: Alcotest Array Bits Elastic Hw List Printf QCheck QCheck_alcotest Queue Random String Workload
