test/test_melastic.ml: Alcotest Array Bits Fun Hw List Melastic Printf QCheck QCheck_alcotest Queue Random Workload
