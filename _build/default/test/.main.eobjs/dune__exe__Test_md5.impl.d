test/test_md5.ml: Alcotest Array Bits Char Fun Hw List Md5 Melastic Printf QCheck QCheck_alcotest String Workload
