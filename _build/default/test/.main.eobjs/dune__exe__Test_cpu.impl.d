test/test_cpu.ml: Alcotest Array Buffer Cpu Hashtbl Hw List Melastic Printf QCheck QCheck_alcotest Random
