(* Protocol robustness and failure injection: what happens when a
   producer violates the MT-elastic contract, how the checkers react,
   and the quantitative advantage of the aligned join. *)

module S = Hw.Signal
module Mc = Melastic.Mt_channel

let test_multi_valid_checker_fires () =
  (* Failure injection: a rogue source asserts two valids at once; the
     protocol checker must flag it. *)
  let b = S.Builder.create () in
  let src = Mc.source b ~name:"src" ~threads:3 ~width:8 in
  ignore (S.output b "violation" (Mc.multi_valid b src));
  let m = Melastic.Meb.create ~kind:Melastic.Meb.Reduced b src in
  Mc.sink b ~name:"snk" m.Melastic.Meb.out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  Hw.Sim.poke_int sim "snk_ready" 7;
  Hw.Sim.poke_int sim "src_valid" 0b001;
  Hw.Sim.settle sim;
  Alcotest.(check bool) "single valid ok" false (Hw.Sim.peek_bool sim "violation");
  Hw.Sim.poke_int sim "src_valid" 0b101;
  Hw.Sim.settle sim;
  Alcotest.(check bool) "double valid flagged" true (Hw.Sim.peek_bool sim "violation");
  Hw.Sim.poke_int sim "src_valid" 0b111;
  Hw.Sim.settle sim;
  Alcotest.(check bool) "triple valid flagged" true (Hw.Sim.peek_bool sim "violation")

let test_meb_output_never_multi_valid_under_rogue_input () =
  (* Even with a rogue double-valid producer, the MEB's own output
     channel keeps the single-valid invariant (its arbiter grants one
     thread). *)
  List.iter
    (fun kind ->
      let b = S.Builder.create () in
      let src = Mc.source b ~name:"src" ~threads:3 ~width:8 in
      let m = Melastic.Meb.create ~kind b src in
      ignore (S.output b "out_violation" (Mc.multi_valid b m.Melastic.Meb.out));
      Mc.sink b ~name:"snk" m.Melastic.Meb.out;
      let sim = Hw.Sim.create (Hw.Circuit.create b) in
      Hw.Sim.poke_int sim "snk_ready" 7;
      let seen = ref false in
      Hw.Sim.on_cycle sim (fun sim ->
          if Hw.Sim.peek_bool sim "out_violation" then seen := true);
      for c = 0 to 19 do
        Hw.Sim.poke_int sim "src_valid" (0b011 + (c mod 2));
        Hw.Sim.poke_int sim "src_data" c;
        Hw.Sim.cycle sim
      done;
      Alcotest.(check bool)
        (Melastic.Meb.kind_to_string kind ^ ": output single-valid holds")
        false !seen)
    [ Melastic.Meb.Full; Melastic.Meb.Reduced ]

let test_sink_never_ready_no_crash () =
  (* Total downstream deadlock: the design must simply hold state (no
     exceptions, no token loss once released). *)
  let b = S.Builder.create () in
  let src = Mc.source b ~name:"src" ~threads:2 ~width:16 in
  let out, _ = Melastic.Meb.pipeline ~kind:Melastic.Meb.Reduced b ~stages:3 src in
  Mc.sink b ~name:"snk" out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads:2 ~width:16 in
  for t = 0 to 1 do
    for i = 0 to 9 do Workload.Mt_driver.push_int d ~thread:t ((t * 100) + i) done
  done;
  Workload.Mt_driver.set_sink_ready d (fun _ _ -> false);
  Workload.Mt_driver.run d 100;
  Alcotest.(check int) "nothing delivered" 0
    (List.length (Workload.Mt_driver.outputs d));
  (* Release: everything drains in order. *)
  Workload.Mt_driver.set_sink_ready d (fun _ _ -> true);
  Alcotest.(check bool) "drains" true (Workload.Mt_driver.run_until_drained d ~limit:300);
  for t = 0 to 1 do
    Alcotest.(check (list int))
      (Printf.sprintf "thread %d intact" t)
      (List.init 10 (fun i -> (t * 100) + i))
      (List.map Bits.to_int (Workload.Mt_driver.output_sequence d ~thread:t))
  done

(* Aligned join vs leader/follower.  Under symmetric saturation the
   follower trivially tracks the leader, so the scenario that matters
   is asymmetric availability: input C receives its tokens in
   per-thread bursts, so at any moment C's buffer holds only one
   thread.  The leader/follower pair joins only when the leader's
   rotating grant happens to match; the shared arbiter of the aligned
   pair picks the common thread every cycle. *)
let join_throughput ~aligned =
  let threads = 4 and width = 16 in
  let b = S.Builder.create () in
  let sa = Mc.source b ~name:"sa" ~threads ~width in
  let sc = Mc.source b ~name:"sc" ~threads ~width in
  let joined =
    if aligned then (Melastic.Aligned.create b sa sc).Melastic.Aligned.out
    else begin
      let ma = Melastic.Meb_full.create ~name:"ma" ~policy:Melastic.Policy.Valid_only b sa in
      let mc = Melastic.Meb_full.create ~name:"mc" ~policy:Melastic.Policy.Ready_aware b sc in
      Melastic.M_join.create b ma.Melastic.Meb_full.out mc.Melastic.Meb_full.out
    end
  in
  Mc.sink b ~name:"snk" joined;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let qa = Array.init threads (fun _ -> Queue.create ()) in
  let qc = Array.init threads (fun _ -> Queue.create ()) in
  for t = 0 to threads - 1 do
    for i = 0 to 49 do
      Queue.add ((t * 100) + i) qa.(t);
      Queue.add ((t * 100) + i) qc.(t)
    done
  done;
  let delivered = ref 0 in
  Hw.Sim.poke_int sim "snk_ready" 15;
  let ptr_a = ref 0 in
  let horizon = 200 in
  for cycle = 1 to horizon do
    Hw.Sim.poke_int sim "sa_valid" 0;
    Hw.Sim.poke_int sim "sc_valid" 0;
    Hw.Sim.settle sim;
    (* A: round-robin over every thread with pending data. *)
    let inject_rr src q ptr =
      let ready = Hw.Sim.peek sim (src ^ "_ready") in
      let chosen = ref None in
      for k = 0 to threads - 1 do
        let i = (!ptr + k) mod threads in
        if !chosen = None && Bits.bit ready i && not (Queue.is_empty q.(i)) then
          chosen := Some i
      done;
      match !chosen with
      | Some i ->
        Hw.Sim.poke sim (src ^ "_valid") (Bits.set_bit (Bits.zero threads) i true);
        Hw.Sim.poke_int sim (src ^ "_data") (Queue.pop q.(i));
        ptr := (i + 1) mod threads
      | None -> ()
    in
    (* C: bursty — only the window's thread is offered. *)
    let inject_bursty src q =
      let w = cycle / 4 mod threads in
      let ready = Hw.Sim.peek sim (src ^ "_ready") in
      if Bits.bit ready w && not (Queue.is_empty q.(w)) then begin
        Hw.Sim.poke sim (src ^ "_valid") (Bits.set_bit (Bits.zero threads) w true);
        Hw.Sim.poke_int sim (src ^ "_data") (Queue.pop q.(w))
      end
    in
    inject_rr "sa" qa ptr_a;
    inject_bursty "sc" qc;
    Hw.Sim.settle sim;
    let fire = Hw.Sim.peek sim "snk_fire" in
    for t = 0 to threads - 1 do
      if Bits.bit fire t then incr delivered
    done;
    Hw.Sim.cycle sim
  done;
  float_of_int !delivered /. float_of_int horizon

let test_aligned_join_beats_leader_follower () =
  let aligned = join_throughput ~aligned:true in
  let lf = join_throughput ~aligned:false in
  Alcotest.(check bool)
    (Printf.sprintf "aligned %.2f > leader/follower %.2f" aligned lf)
    true
    (aligned > lf +. 0.1);
  Alcotest.(check bool)
    (Printf.sprintf "aligned clearly better (%.2f)" aligned)
    true (aligned > 0.5)

let suite =
  ( "protocol",
    [ Alcotest.test_case "multi-valid checker fires" `Quick
        test_multi_valid_checker_fires;
      Alcotest.test_case "MEB output single-valid under rogue input" `Quick
        test_meb_output_never_multi_valid_under_rogue_input;
      Alcotest.test_case "total deadlock then drain" `Quick
        test_sink_never_ready_no_crash;
      Alcotest.test_case "aligned join beats leader/follower" `Quick
        test_aligned_join_beats_leader_follower ] )
