(* Tests for the FPGA technology model: LE mapping, FF packing, and
   static timing analysis on hand-checkable netlists. *)

module S = Hw.Signal

let cost_of build =
  let b = S.Builder.create () in
  build b;
  Fpga.Tech.circuit_cost (Hw.Circuit.create b)

let test_wiring_is_free () =
  let c =
    cost_of (fun b ->
        let x = S.input b "x" 8 in
        let y = S.concat_msb b [ S.select b x ~hi:7 ~lo:4; S.select b x ~hi:3 ~lo:0 ] in
        ignore (S.output b "y" (S.lnot b y)))
  in
  Alcotest.(check int) "no LUTs" 0 c.Fpga.Tech.luts;
  Alcotest.(check int) "no FFs" 0 c.Fpga.Tech.ffs

let test_gate_costs () =
  let c =
    cost_of (fun b ->
        let x = S.input b "x" 8 and y = S.input b "y" 8 in
        ignore (S.output b "o" (S.land_ b x y)))
  in
  Alcotest.(check int) "8-bit and = 8 LUTs" 8 c.Fpga.Tech.luts;
  let c =
    cost_of (fun b ->
        let x = S.input b "x" 16 and y = S.input b "y" 16 in
        ignore (S.output b "o" (S.add b x y)))
  in
  Alcotest.(check int) "16-bit add = 16 LUTs" 16 c.Fpga.Tech.luts

let test_mux_costs () =
  let mux_cost k w =
    (cost_of (fun b ->
         let sel = S.input b "sel" (max 1 (S.clog2 k)) in
         let cases = List.init k (fun i -> S.input b (Printf.sprintf "c%d" i) w) in
         ignore (S.output b "o" (S.mux b sel cases))))
      .Fpga.Tech.luts
  in
  Alcotest.(check int) "2:1 x 8" 8 (mux_cost 2 8);
  Alcotest.(check int) "4:1 x 8" 16 (mux_cost 4 8);
  (* A mux of constants is a function of the selector only. *)
  let c =
    cost_of (fun b ->
        let sel = S.input b "sel" 2 in
        let cases = List.init 4 (fun i -> S.of_int b ~width:8 (i * 3)) in
        ignore (S.output b "o" (S.mux b sel cases)))
  in
  Alcotest.(check int) "constant 4:1 x 8 = 8 LUTs" 8 c.Fpga.Tech.luts

let test_ff_packing () =
  (* reg fed by a fanout-1 LUT packs; reg fed by wiring does not. *)
  let packed =
    cost_of (fun b ->
        let x = S.input b "x" 8 and y = S.input b "y" 8 in
        ignore (S.output b "q" (S.reg b (S.land_ b x y))))
  in
  Alcotest.(check int) "packed FFs" 8 packed.Fpga.Tech.packed_ffs;
  Alcotest.(check int) "LEs = LUTs" 8 (Fpga.Tech.les packed);
  let unpacked =
    cost_of (fun b ->
        let x = S.input b "x" 8 in
        ignore (S.output b "q" (S.reg b x)))
  in
  Alcotest.(check int) "unpacked FFs" 0 unpacked.Fpga.Tech.packed_ffs;
  Alcotest.(check int) "LEs = FFs" 8 (Fpga.Tech.les unpacked);
  (* Fanout 2 prevents packing. *)
  let shared =
    cost_of (fun b ->
        let x = S.input b "x" 8 and y = S.input b "y" 8 in
        let s = S.land_ b x y in
        ignore (S.output b "q" (S.reg b s));
        ignore (S.output b "o" s))
  in
  Alcotest.(check int) "shared LUT does not pack" 0 shared.Fpga.Tech.packed_ffs

let test_memory_and_dsp_excluded () =
  let c =
    cost_of (fun b ->
        let mem = S.Memory.create b ~name:"m" ~size:16 ~width:8 () in
        let a = S.input b "a" 4 in
        let x = S.input b "x" 8 and y = S.input b "y" 8 in
        ignore (S.output b "r" (S.Memory.read_async b mem ~addr:a));
        ignore (S.output b "p" (S.mul b x y)))
  in
  Alcotest.(check int) "bram counted" 1 c.Fpga.Tech.brams;
  Alcotest.(check int) "dsp counted" 1 c.Fpga.Tech.dsps;
  Alcotest.(check int) "neither in LEs" 0 (Fpga.Tech.les c)

let test_capacity_matches_ff_count () =
  (* A full MEB has 2S slots of payload FFs + control; a reduced MEB
     has S+1; with a 32-bit payload the FF difference must be at least
     (S-1)*32. *)
  let ffs kind =
    let b = S.Builder.create () in
    let src = Melastic.Mt_channel.source b ~name:"src" ~threads:4 ~width:32 in
    let m = Melastic.Meb.create ~kind b src in
    Melastic.Mt_channel.sink b ~name:"snk" m.Melastic.Meb.out;
    (Fpga.Tech.circuit_cost (Hw.Circuit.create b)).Fpga.Tech.ffs
  in
  let diff = ffs Melastic.Meb.Full - ffs Melastic.Meb.Reduced in
  (* (2S - (S+1)) * 32 payload FFs, minus a little control slack (the
     reduced MEB adds the shared-slot FSM). *)
  Alcotest.(check bool)
    (Printf.sprintf "FF diff %d ~ (S-1)*width" diff)
    true
    (diff >= (3 * 32) - 8 && diff <= 3 * 32)

let test_timing_monotone () =
  (* A deeper adder chain has a longer critical path. *)
  let crit depth =
    let b = S.Builder.create () in
    let x = S.input b "x" 16 in
    let rec chain i acc = if i = 0 then acc else chain (i - 1) (S.add b acc x) in
    ignore (S.output b "q" (S.reg b (chain depth x)));
    (Fpga.Timing.analyze (Hw.Circuit.create b)).Fpga.Timing.critical_path_ns
  in
  let c1 = crit 1 and c4 = crit 4 and c8 = crit 8 in
  Alcotest.(check bool) (Printf.sprintf "1 < 4 (%f < %f)" c1 c4) true (c1 < c4);
  Alcotest.(check bool) (Printf.sprintf "4 < 8 (%f < %f)" c4 c8) true (c4 < c8)

let test_timing_registers_cut_paths () =
  (* Inserting a register mid-chain halves the register-to-register
     critical path (roughly). *)
  let crit ~cut =
    let b = S.Builder.create () in
    let x = S.input b "x" 16 in
    let rec chain i acc = if i = 0 then acc else chain (i - 1) (S.add b acc x) in
    let half = chain 4 x in
    let half = if cut then S.reg b half else half in
    ignore (S.output b "q" (S.reg b (chain 4 half)));
    (Fpga.Timing.analyze (Hw.Circuit.create b)).Fpga.Timing.critical_path_ns
  in
  let no_cut = crit ~cut:false and with_cut = crit ~cut:true in
  Alcotest.(check bool)
    (Printf.sprintf "cut shortens path (%f < %f)" with_cut no_cut)
    true
    (with_cut < no_cut *. 0.7)

let test_timing_critical_path_report () =
  let b = S.Builder.create () in
  let x = S.input b "x" 8 in
  ignore (S.output b "q" (S.reg b (S.add b x x)));
  let r = Fpga.Timing.analyze (Hw.Circuit.create b) in
  Alcotest.(check bool) "has a path" true (List.length r.Fpga.Timing.critical_nodes > 0);
  Alcotest.(check bool) "fmax positive" true (r.Fpga.Timing.fmax_mhz > 0.0);
  Alcotest.(check bool) "route factor > 1" true (r.Fpga.Timing.route_factor > 1.0)

(* Property: adding logic never decreases area. *)
let prop_area_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50 ~name:"area grows with gate count"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 10))
       (fun n ->
         let les k =
           let b = S.Builder.create () in
           let x = S.input b "x" 8 in
           let rec chain i acc =
             if i = 0 then acc else chain (i - 1) (S.lxor_ b acc x)
           in
           ignore (S.output b "q" (chain k x));
           Fpga.Tech.les (Fpga.Tech.circuit_cost (Hw.Circuit.create b))
         in
         les (n + 1) >= les n))

let suite =
  ( "fpga",
    [ Alcotest.test_case "wiring free" `Quick test_wiring_is_free;
      Alcotest.test_case "gate costs" `Quick test_gate_costs;
      Alcotest.test_case "mux costs" `Quick test_mux_costs;
      Alcotest.test_case "FF packing" `Quick test_ff_packing;
      Alcotest.test_case "memory/dsp excluded" `Quick test_memory_and_dsp_excluded;
      Alcotest.test_case "MEB capacity in FFs" `Quick test_capacity_matches_ff_count;
      Alcotest.test_case "timing monotone" `Quick test_timing_monotone;
      Alcotest.test_case "registers cut paths" `Quick test_timing_registers_cut_paths;
      Alcotest.test_case "critical path report" `Quick test_timing_critical_path_report;
      prop_area_monotone ] )
