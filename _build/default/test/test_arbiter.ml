(* Tests for the circuit arbiters against exhaustive enumeration and
   the pure reference models. *)

module S = Hw.Signal

let test_fixed_priority_exhaustive () =
  let b = S.Builder.create () in
  let req = S.input b "req" 4 in
  ignore (S.output b "grant" (Arbiter.fixed_priority b req));
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  for r = 0 to 15 do
    Hw.Sim.poke_int sim "req" r;
    Hw.Sim.settle sim;
    let expected =
      match Arbiter.Model.fixed_priority (Array.init 4 (fun i -> r land (1 lsl i) <> 0)) with
      | Some i -> 1 lsl i
      | None -> 0
    in
    Alcotest.(check int) (Printf.sprintf "req=%d" r) expected (Hw.Sim.peek_int sim "grant")
  done

let test_mask_ge () =
  let b = S.Builder.create () in
  let ptr = S.input b "ptr" 3 in
  ignore (S.output b "mask" (Arbiter.mask_ge b ~width:6 ptr));
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  for p = 0 to 5 do
    Hw.Sim.poke_int sim "ptr" p;
    Hw.Sim.settle sim;
    let expected = (0b111111 lsr p) lsl p in
    Alcotest.(check int) (Printf.sprintf "ptr=%d" p) expected (Hw.Sim.peek_int sim "mask")
  done

let make_rr_sim n =
  let b = S.Builder.create () in
  let req = S.input b "req" n in
  let advance = S.input b "advance" 1 in
  let rr = Arbiter.round_robin b ~advance req in
  ignore (S.output b "grant" rr.Arbiter.grant);
  ignore (S.output b "index" rr.Arbiter.grant_index);
  ignore (S.output b "any" rr.Arbiter.any_grant);
  Hw.Sim.create (Hw.Circuit.create b)

let test_round_robin_rotates () =
  let sim = make_rr_sim 4 in
  (* All requesting, always advancing: grants must rotate 0,1,2,3,0... *)
  Hw.Sim.poke_int sim "req" 0b1111;
  Hw.Sim.poke_int sim "advance" 1;
  let seen = ref [] in
  for _ = 0 to 7 do
    Hw.Sim.settle sim;
    seen := Hw.Sim.peek_int sim "index" :: !seen;
    Hw.Sim.cycle sim
  done;
  Alcotest.(check (list int)) "rotation" [ 0; 1; 2; 3; 0; 1; 2; 3 ] (List.rev !seen)

let test_round_robin_skips_idle () =
  let sim = make_rr_sim 4 in
  Hw.Sim.poke_int sim "req" 0b1010;
  Hw.Sim.poke_int sim "advance" 1;
  let seen = ref [] in
  for _ = 0 to 5 do
    Hw.Sim.settle sim;
    seen := Hw.Sim.peek_int sim "index" :: !seen;
    Hw.Sim.cycle sim
  done;
  Alcotest.(check (list int)) "alternates 1,3" [ 1; 3; 1; 3; 1; 3 ] (List.rev !seen)

let test_round_robin_no_advance_holds () =
  let sim = make_rr_sim 4 in
  Hw.Sim.poke_int sim "req" 0b1111;
  Hw.Sim.poke_int sim "advance" 0;
  for _ = 0 to 4 do
    Hw.Sim.settle sim;
    Alcotest.(check int) "held" 0 (Hw.Sim.peek_int sim "index");
    Hw.Sim.cycle sim
  done

let test_round_robin_no_request () =
  let sim = make_rr_sim 4 in
  Hw.Sim.poke_int sim "req" 0;
  Hw.Sim.poke_int sim "advance" 1;
  Hw.Sim.settle sim;
  Alcotest.(check int) "no grant" 0 (Hw.Sim.peek_int sim "grant");
  Alcotest.(check bool) "any low" false (Hw.Sim.peek_bool sim "any")

(* Property: the circuit RR matches the reference model over random
   request streams (advance = a grant exists, i.e. rotate-on-grant). *)
let prop_rr_matches_model =
  let arb =
    QCheck.make
      ~print:(fun (n, reqs) ->
        Printf.sprintf "n=%d steps=%d" n (List.length reqs))
      QCheck.Gen.(
        int_range 2 6 >>= fun n ->
        list_size (int_range 1 60) (int_bound ((1 lsl n) - 1)) >>= fun reqs ->
        return (n, reqs))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"round-robin matches reference model" arb
       (fun (n, reqs) ->
         let sim = make_rr_sim n in
         let model = Arbiter.Model.make_rr n in
         Hw.Sim.poke_int sim "advance" 1;
         List.for_all
           (fun r ->
             Hw.Sim.poke_int sim "req" r;
             Hw.Sim.settle sim;
             let expected =
               Arbiter.Model.rr_grant model (Array.init n (fun i -> r land (1 lsl i) <> 0))
             in
             let got =
               if Hw.Sim.peek_bool sim "any" then Some (Hw.Sim.peek_int sim "index")
               else None
             in
             (match expected with
              | Some g -> Arbiter.Model.rr_advance model g
              | None -> ());
             Hw.Sim.cycle sim;
             expected = got)
           reqs))

(* Fairness: under constant full request, every requester gets an equal
   share over a window. *)
let test_round_robin_fair () =
  let sim = make_rr_sim 5 in
  Hw.Sim.poke_int sim "req" 0b11111;
  Hw.Sim.poke_int sim "advance" 1;
  let counts = Array.make 5 0 in
  for _ = 1 to 100 do
    Hw.Sim.settle sim;
    let i = Hw.Sim.peek_int sim "index" in
    counts.(i) <- counts.(i) + 1;
    Hw.Sim.cycle sim
  done;
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "thread %d share" i) 20 c)
    counts

let make_sticky_sim n quantum =
  let b = S.Builder.create () in
  let req = S.input b "req" n in
  let advance = S.input b "advance" 1 in
  let rr = Arbiter.sticky_round_robin b ~advance ~quantum req in
  ignore (S.output b "grant" rr.Arbiter.grant);
  ignore (S.output b "index" rr.Arbiter.grant_index);
  ignore (S.output b "any" rr.Arbiter.any_grant);
  Hw.Sim.create (Hw.Circuit.create b)

let test_sticky_quantum () =
  (* All threads request: the owner keeps the grant for [quantum]
     cycles before the next thread is adopted. *)
  let sim = make_sticky_sim 3 4 in
  Hw.Sim.poke_int sim "req" 0b111;
  Hw.Sim.poke_int sim "advance" 1;
  let seen = ref [] in
  for _ = 0 to 11 do
    Hw.Sim.settle sim;
    seen := Hw.Sim.peek_int sim "index" :: !seen;
    Hw.Sim.cycle sim
  done;
  Alcotest.(check (list int)) "4-cycle quanta"
    [ 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2 ]
    (List.rev !seen)

let test_sticky_releases_on_idle () =
  (* The owner stops requesting before its quantum is up: the grant
     moves on immediately. *)
  let sim = make_sticky_sim 3 8 in
  Hw.Sim.poke_int sim "advance" 1;
  Hw.Sim.poke_int sim "req" 0b111;
  Hw.Sim.settle sim;
  Alcotest.(check int) "owner 0" 0 (Hw.Sim.peek_int sim "index");
  Hw.Sim.cycle sim;
  (* Thread 0 goes idle. *)
  Hw.Sim.poke_int sim "req" 0b110;
  Hw.Sim.settle sim;
  Alcotest.(check int) "moves to 1" 1 (Hw.Sim.peek_int sim "index");
  Hw.Sim.cycle sim;
  Hw.Sim.settle sim;
  Alcotest.(check int) "sticks with 1" 1 (Hw.Sim.peek_int sim "index")

let test_sticky_no_request () =
  let sim = make_sticky_sim 3 4 in
  Hw.Sim.poke_int sim "req" 0;
  Hw.Sim.poke_int sim "advance" 1;
  Hw.Sim.settle sim;
  Alcotest.(check bool) "no grant" false (Hw.Sim.peek_bool sim "any")

let suite =
  ( "arbiter",
    [ Alcotest.test_case "fixed priority exhaustive" `Quick test_fixed_priority_exhaustive;
      Alcotest.test_case "thermometer mask" `Quick test_mask_ge;
      Alcotest.test_case "round robin rotates" `Quick test_round_robin_rotates;
      Alcotest.test_case "round robin skips idle" `Quick test_round_robin_skips_idle;
      Alcotest.test_case "round robin holds without advance" `Quick
        test_round_robin_no_advance_holds;
      Alcotest.test_case "round robin no request" `Quick test_round_robin_no_request;
      Alcotest.test_case "round robin fair" `Quick test_round_robin_fair;
      Alcotest.test_case "sticky quantum" `Quick test_sticky_quantum;
      Alcotest.test_case "sticky releases on idle" `Quick test_sticky_releases_on_idle;
      Alcotest.test_case "sticky no request" `Quick test_sticky_no_request;
      prop_rr_matches_model ] )
