(* MD5: RFC 1321 reference vectors, then circuit-vs-reference
   co-simulation for both MEB kinds. *)

let test_rfc_vectors () =
  List.iter
    (fun (msg, expected) ->
      Alcotest.(check string) (Printf.sprintf "md5(%S)" msg) expected (Md5.Md5_ref.digest msg))
    [ ("", "d41d8cd98f00b204e9800998ecf8427e");
      ("a", "0cc175b9c0f1b6a831c399e269772661");
      ("abc", "900150983cd24fb0d6963f7d28e17f72");
      ("message digest", "f96b697d7cb7938d525a2f31aaf161d0");
      ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b");
      ("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
       "d174ab98d277d9f5a5611c2c9f419d9f");
      ("12345678901234567890123456789012345678901234567890123456789012345678901234567890",
       "57edf4a22be3c955ac49da2e2107b67a") ]

let test_t_table () =
  (* Spot-check the computed sine table against RFC 1321 values. *)
  Alcotest.(check int) "T[0]" 0xd76aa478 Md5.Md5_ref.t_table.(0);
  Alcotest.(check int) "T[1]" 0xe8c7b756 Md5.Md5_ref.t_table.(1);
  Alcotest.(check int) "T[63]" 0xeb86d391 Md5.Md5_ref.t_table.(63)

let test_padding () =
  let p = Md5.Md5_ref.pad_message "abc" in
  Alcotest.(check int) "one block" 64 (String.length p);
  Alcotest.(check char) "0x80 delimiter" '\x80' p.[3];
  Alcotest.(check char) "bit length lo" '\x18' p.[56];
  let long = String.make 56 'x' in
  Alcotest.(check int) "two blocks" 128 (String.length (Md5.Md5_ref.pad_message long))

let test_block_roundtrip () =
  let words = Md5.Md5_ref.single_block_words "hello" in
  let bits = Md5.Md5_ref.block_to_bits words in
  Alcotest.(check int) "width" 512 (Bits.width bits);
  Array.iteri
    (fun i w ->
      Alcotest.(check int) (Printf.sprintf "word %d" i) w
        (Bits.to_int (Bits.select bits ~hi:((32 * (i + 1)) - 1) ~lo:(32 * i))))
    words

(* Drive the circuit: one message per thread, compare digests. *)
let standard_iv = Md5.Md5_ref.state_to_bits Md5.Md5_ref.iv

let single_block_input msg =
  Md5.Md5_circuit.input_bits
    ~block:(Md5.Md5_ref.block_to_bits (Md5.Md5_ref.single_block_words msg))
    ~iv:standard_iv

let run_circuit ~kind ~threads msgs =
  let circuit = Md5.Md5_circuit.circuit ~kind ~threads () in
  let sim = Hw.Sim.create circuit in
  let d =
    Workload.Mt_driver.create sim ~src:"msg" ~snk:"digest" ~threads
      ~width:Md5.Md5_circuit.input_width
  in
  List.iteri
    (fun t per_thread ->
      List.iter
        (fun msg -> Workload.Mt_driver.push d ~thread:t (single_block_input msg))
        per_thread)
    msgs;
  let sync_violation = ref false in
  Hw.Sim.on_cycle sim (fun sim ->
      if not (Hw.Sim.peek_bool sim "sync_ok") then sync_violation := true);
  let drained = Workload.Mt_driver.run_until_drained d ~limit:5000 in
  Alcotest.(check bool) "drained" true drained;
  Alcotest.(check bool) "round field synced with counter" false !sync_violation;
  d

let check_digests d msgs =
  List.iteri
    (fun t per_thread ->
      let expected =
        List.map
          (fun m -> Md5.Md5_ref.to_hex (Md5.Md5_ref.digest_words m))
          per_thread
      in
      let got =
        List.map
          (fun bits -> Md5.Md5_ref.to_hex (Md5.Md5_ref.state_of_bits bits))
          (Workload.Mt_driver.output_sequence d ~thread:t)
      in
      Alcotest.(check (list string)) (Printf.sprintf "thread %d digests" t) expected got)
    msgs

let test_circuit_single_thread_kind kind () =
  let msgs = [ [ "abc" ] ] in
  let d = run_circuit ~kind ~threads:1 msgs in
  check_digests d msgs

let test_circuit_multi_thread_kind kind () =
  let msgs =
    List.init 4 (fun t -> [ Printf.sprintf "thread-%d message" t ])
  in
  let d = run_circuit ~kind ~threads:4 msgs in
  check_digests d msgs

let test_circuit_batches_kind kind () =
  (* Three successive batches per thread exercise counter wrap-around,
     gate re-opening and barrier episodes. *)
  let msgs =
    List.init 3 (fun t ->
        List.init 3 (fun k -> Printf.sprintf "t%d batch %d" t k))
  in
  let d = run_circuit ~kind ~threads:3 msgs in
  check_digests d msgs

let test_circuit_eight_threads () =
  (* The paper's 8-thread configuration, reduced MEBs. *)
  let msgs = List.init 8 (fun t -> [ String.make (t + 1) (Char.chr (97 + t)) ]) in
  let d = run_circuit ~kind:Melastic.Meb.Reduced ~threads:8 msgs in
  check_digests d msgs

let prop_circuit_matches_reference =
  let arb =
    QCheck.make
      ~print:(fun (kind, msgs) ->
        Printf.sprintf "kind=%b msgs=%s" kind (String.concat "|" msgs))
      QCheck.Gen.(
        bool >>= fun kind ->
        list_size (return 3) (string_size ~gen:printable (int_bound 55)) >>= fun msgs ->
        return (kind, msgs))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:15 ~name:"MD5 circuit matches reference on random messages"
       arb
       (fun (kind_b, msgs) ->
         let kind = if kind_b then Melastic.Meb.Full else Melastic.Meb.Reduced in
         let per_thread = List.map (fun m -> [ m ]) msgs in
         let d = run_circuit ~kind ~threads:(List.length msgs) per_thread in
         List.for_all2
           (fun t msg ->
             match Workload.Mt_driver.output_sequence d ~thread:t with
             | [ bits ] ->
               Md5.Md5_ref.to_hex (Md5.Md5_ref.state_of_bits bits)
               = Md5.Md5_ref.to_hex (Md5.Md5_ref.digest_words msg)
             | _ -> false)
           (List.init (List.length msgs) Fun.id)
           msgs))

(* Multi-block: hash arbitrary-length messages (including unequal
   block counts across threads, which forces the host driver to feed
   dummy blocks so the barrier keeps releasing). *)
let test_multiblock kind () =
  let msgs =
    [ String.make 70 'a';
      String.concat "" (List.init 5 (fun i -> Printf.sprintf "block-%d-payload!" i));
      String.make 119 'x' ^ "tail, third block follows" ^ String.make 20 'y' ]
  in
  let threads = List.length msgs in
  let sim = Hw.Sim.create (Md5.Md5_circuit.circuit ~kind ~threads ()) in
  let digests = Md5.Md5_host.hash_messages ~limit:20000 sim msgs in
  List.iter2
    (fun msg got ->
      Alcotest.(check string)
        (Printf.sprintf "multiblock md5(%d bytes)" (String.length msg))
        (Md5.Md5_ref.digest msg) got)
    msgs digests

let test_multiblock_very_long () =
  (* A 1000-byte message: 16 chained blocks on one thread alongside a
     short message on the other. *)
  let msgs = [ String.init 1000 (fun i -> Char.chr (33 + (i mod 90))); "hi" ] in
  let sim =
    Hw.Sim.create (Md5.Md5_circuit.circuit ~kind:Melastic.Meb.Reduced ~threads:2 ())
  in
  let digests = Md5.Md5_host.hash_messages ~limit:50000 sim msgs in
  List.iter2
    (fun msg got -> Alcotest.(check string) "long message" (Md5.Md5_ref.digest msg) got)
    msgs digests

let kind_cases name f =
  List.map
    (fun kind ->
      Alcotest.test_case
        (Printf.sprintf "%s (%s)" name (Melastic.Meb.kind_to_string kind))
        `Quick (f kind))
    [ Melastic.Meb.Full; Melastic.Meb.Reduced ]

let suite =
  ( "md5",
    [ Alcotest.test_case "RFC 1321 vectors" `Quick test_rfc_vectors;
      Alcotest.test_case "T table" `Quick test_t_table;
      Alcotest.test_case "padding" `Quick test_padding;
      Alcotest.test_case "block bits roundtrip" `Quick test_block_roundtrip ]
    @ kind_cases "circuit 1 thread" test_circuit_single_thread_kind
    @ kind_cases "circuit 4 threads" test_circuit_multi_thread_kind
    @ kind_cases "circuit 3 batches" test_circuit_batches_kind
    @ kind_cases "multi-block chaining" test_multiblock
    @ [ Alcotest.test_case "multi-block 1000 bytes" `Quick test_multiblock_very_long;
        Alcotest.test_case "circuit 8 threads (paper config)" `Quick
          test_circuit_eight_threads;
        prop_circuit_matches_reference ] )
