(* Processor tests: ISA encode/decode, assembler, ISS programs, and
   pipeline-vs-ISS co-simulation for both MEB kinds and random
   latencies. *)

module Isa = Cpu.Isa
module Asm = Cpu.Asm
module Iss = Cpu.Iss

let test_encode_decode_roundtrip () =
  let st = Random.State.make [| 7 |] in
  List.iter
    (fun op ->
      for _ = 1 to 20 do
        let i =
          Isa.make ~rd:(Random.State.int st 16) ~rs:(Random.State.int st 16)
            ~rt:(Random.State.int st 16)
            ~imm:(Random.State.int st (1 lsl 14) - (1 lsl 13))
            op
        in
        match Isa.decode (Isa.encode i) with
        | Some j -> Alcotest.(check bool) (Isa.to_string i) true (i = j)
        | None -> Alcotest.fail ("decode failed for " ^ Isa.to_string i)
      done)
    Isa.all_opcodes

let test_decode_illegal () =
  Alcotest.(check bool) "illegal opcode" true (Isa.decode (0x3e lsl 26) = None)

let test_asm_basic () =
  let words =
    Asm.assemble_words
      "  addi r1, r0, 5\n  addi r2, r0, 7\n  add r3, r1, r2\n  halt\n"
  in
  Alcotest.(check int) "4 instructions" 4 (List.length words);
  (match Isa.decode (List.nth words 2) with
   | Some i ->
     Alcotest.(check string) "add decodes" "add r3, r1, r2" (Isa.to_string i)
   | None -> Alcotest.fail "decode");
  (* li / mv pseudo-instructions. *)
  let words = Asm.assemble_words "li r1, 3\nmv r2, r1\nhalt\n" in
  Alcotest.(check int) "pseudos" 3 (List.length words)

let test_asm_labels_and_branches () =
  let program =
    "start: addi r1, r0, 3\n\
     loop:  addi r1, r1, -1\n\
     \       bne r1, r0, loop\n\
     \       j end\n\
     \       addi r2, r0, 99   ; skipped\n\
     end:   halt\n"
  in
  let words, labels = Asm.assemble program in
  Alcotest.(check int) "length" 6 (List.length words);
  Alcotest.(check (option int)) "loop label" (Some 1) (Hashtbl.find_opt labels "loop");
  (match Isa.decode (List.nth words 2) with
   | Some i ->
     Alcotest.(check int) "bne backward offset" (-1) (Isa.imm_signed i)
   | None -> Alcotest.fail "decode");
  (match Isa.decode (List.nth words 3) with
   | Some i -> Alcotest.(check int) "j absolute" 5 i.Isa.imm
   | None -> Alcotest.fail "decode")

let test_asm_errors () =
  let expect_error src =
    try
      ignore (Asm.assemble_words src);
      Alcotest.fail ("expected assembly error for: " ^ src)
    with Asm.Error _ -> ()
  in
  expect_error "bogus r1, r2\n";
  expect_error "add r1, r2\n";
  expect_error "addi r99, r0, 1\n";
  expect_error "j nowhere\n";
  expect_error "foo: foo: nop\n"

let run_iss program ~threads ~max_steps =
  let words = Asm.assemble_words program in
  let imem = Array.make 256 0 in
  List.iteri (fun i w -> imem.(i) <- w) words;
  let iss =
    Iss.create ~imem ~dmem_size:256 ~threads ~start_pcs:(Array.make threads 0)
  in
  let halted = Iss.run ~max_steps iss in
  (iss, halted)

let test_iss_arith () =
  let iss, halted =
    run_iss ~threads:1 ~max_steps:100
      "addi r1, r0, 6\naddi r2, r0, 7\nmul r3, r1, r2\nsub r4, r3, r1\nhalt\n"
  in
  Alcotest.(check bool) "halted" true halted;
  Alcotest.(check int) "r3 = 42" 42 (Iss.reg_value iss ~thread:0 ~reg:3);
  Alcotest.(check int) "r4 = 36" 36 (Iss.reg_value iss ~thread:0 ~reg:4)

let test_iss_fib () =
  let iss, halted =
    run_iss ~threads:1 ~max_steps:1000
      "addi r1, r0, 0\n\
       addi r2, r0, 1\n\
       addi r3, r0, 10\n\
       loop: add r4, r1, r2\n\
       mv r1, r2\n\
       mv r2, r4\n\
       addi r3, r3, -1\n\
       bne r3, r0, loop\n\
       halt\n"
  in
  Alcotest.(check bool) "halted" true halted;
  Alcotest.(check int) "fib(11) = 89" 89 (Iss.reg_value iss ~thread:0 ~reg:2)

let test_iss_memory () =
  let iss, halted =
    run_iss ~threads:1 ~max_steps:100
      "addi r1, r0, 10\n\
       addi r2, r0, 123\n\
       sw r2, 5(r1)\n\
       lw r3, 5(r1)\n\
       halt\n"
  in
  Alcotest.(check bool) "halted" true halted;
  Alcotest.(check int) "dmem[15]" 123 (Iss.dmem_value iss 15);
  Alcotest.(check int) "loaded" 123 (Iss.reg_value iss ~thread:0 ~reg:3)

let test_iss_jal_jr () =
  let iss, halted =
    run_iss ~threads:1 ~max_steps:100
      "jal r15, func\n\
       addi r2, r0, 1\n\
       halt\n\
       func: addi r1, r0, 77\n\
       jr r15\n"
  in
  Alcotest.(check bool) "halted" true halted;
  Alcotest.(check int) "callee ran" 77 (Iss.reg_value iss ~thread:0 ~reg:1);
  Alcotest.(check int) "returned" 1 (Iss.reg_value iss ~thread:0 ~reg:2)

let test_iss_r0_immutable () =
  let iss, _ = run_iss ~threads:1 ~max_steps:10 "addi r0, r0, 5\nhalt\n" in
  Alcotest.(check int) "r0 stays 0" 0 (Iss.reg_value iss ~thread:0 ~reg:0)

(* ---- Pipeline co-simulation ---- *)

(* Run [program] (same image for all threads; per-thread start PCs) on
   both the ISS and the elastic pipeline; compare architectural
   state. *)
let cosim ?(threads = 2) ?(kind = Melastic.Meb.Reduced)
    ?(imem_latency = Melastic.Mt_varlat.Fixed 0)
    ?(exe_latency = Melastic.Mt_varlat.Fixed 0)
    ?(mem_latency = Melastic.Mt_varlat.Fixed 0) ?start_pcs ~limit program =
  let words = Asm.assemble_words program in
  let start_pcs = match start_pcs with Some p -> p | None -> Array.make threads 0 in
  let config =
    { (Cpu.Mt_pipeline.default_config ~threads) with
      Cpu.Mt_pipeline.kind; imem_latency; exe_latency; mem_latency; start_pcs;
      imem_size = 256; dmem_size = 256 }
  in
  let circuit, t = Cpu.Mt_pipeline.circuit config in
  let sim = Hw.Sim.create circuit in
  Cpu.Mt_pipeline.load_program sim t words;
  Hw.Sim.settle sim;
  let cycles = Cpu.Mt_pipeline.run_until_halted sim ~limit in
  let imem = Array.make 256 0 in
  List.iteri (fun i w -> imem.(i) <- w) words;
  let iss = Iss.create ~imem ~dmem_size:256 ~threads ~start_pcs in
  let iss_ok = Iss.run ~max_steps:100_000 iss in
  (sim, t, iss, cycles, iss_ok)

let check_arch_state sim t iss ~threads =
  for th = 0 to threads - 1 do
    for r = 1 to Isa.num_regs - 1 do
      Alcotest.(check int)
        (Printf.sprintf "thread %d r%d" th r)
        (Iss.reg_value iss ~thread:th ~reg:r)
        (Cpu.Mt_pipeline.read_reg sim t ~thread:th ~reg:r)
    done
  done;
  for a = 0 to 255 do
    Alcotest.(check int) (Printf.sprintf "dmem[%d]" a) (Iss.dmem_value iss a)
      (Cpu.Mt_pipeline.read_dmem sim t a)
  done

let fib_program =
  "addi r1, r0, 0\n\
   addi r2, r0, 1\n\
   addi r3, r0, 8\n\
   loop: add r4, r1, r2\n\
   mv r1, r2\n\
   mv r2, r4\n\
   addi r3, r3, -1\n\
   bne r3, r0, loop\n\
   halt\n"

let test_pipeline_fib kind () =
  let sim, t, iss, cycles, iss_ok = cosim ~threads:2 ~kind ~limit:3000 fib_program in
  Alcotest.(check bool) "iss halted" true iss_ok;
  Alcotest.(check bool) "pipeline halted" true (cycles <> None);
  check_arch_state sim t iss ~threads:2

(* Each thread stores to its own region: exercises SW/LW plus
   thread-indexed addressing derived from a per-thread start block. *)
let store_program ~threads =
  let buf = Buffer.create 256 in
  (* Thread t starts at its own preamble, which sets r10 = t * 16 and
     jumps to the common body. *)
  for t = 0 to threads - 1 do
    Buffer.add_string buf (Printf.sprintf "addi r10, r0, %d\nj body\n" (t * 16))
  done;
  Buffer.add_string buf
    "body: addi r1, r0, 5\n\
     addi r2, r0, 3\n\
     add r3, r1, r2\n\
     sw r3, 0(r10)\n\
     mul r4, r3, r3\n\
     sw r4, 1(r10)\n\
     lw r5, 0(r10)\n\
     add r6, r5, r4\n\
     sw r6, 2(r10)\n\
     halt\n";
  Buffer.contents buf

let test_pipeline_stores kind () =
  let threads = 4 in
  let program = store_program ~threads in
  let start_pcs = Array.init threads (fun t -> 2 * t) in
  let sim, t, iss, cycles, iss_ok =
    cosim ~threads ~kind ~start_pcs ~limit:3000 program
  in
  Alcotest.(check bool) "iss halted" true iss_ok;
  Alcotest.(check bool) "pipeline halted" true (cycles <> None);
  check_arch_state sim t iss ~threads

let test_pipeline_variable_latency kind () =
  let threads = 3 in
  let program = store_program ~threads in
  let start_pcs = Array.init threads (fun t -> 2 * t) in
  let sim, t, iss, cycles, iss_ok =
    cosim ~threads ~kind ~start_pcs ~limit:20000
      ~imem_latency:(Melastic.Mt_varlat.Random { max_latency = 3; seed = 5 })
      ~exe_latency:(Melastic.Mt_varlat.Random { max_latency = 2; seed = 9 })
      ~mem_latency:(Melastic.Mt_varlat.Random { max_latency = 4; seed = 3 })
      program
  in
  Alcotest.(check bool) "iss halted" true iss_ok;
  Alcotest.(check bool) "pipeline halted" true (cycles <> None);
  check_arch_state sim t iss ~threads

let test_pipeline_eight_threads () =
  (* The paper's 8-thread configuration. *)
  let threads = 8 in
  let program = store_program ~threads in
  let start_pcs = Array.init threads (fun t -> 2 * t) in
  let sim, t, iss, cycles, iss_ok =
    cosim ~threads ~kind:Melastic.Meb.Reduced ~start_pcs ~limit:20000 program
  in
  Alcotest.(check bool) "iss halted" true iss_ok;
  Alcotest.(check bool) "pipeline halted" true (cycles <> None);
  check_arch_state sim t iss ~threads

let test_multithreading_hides_latency () =
  (* With variable-latency units, 4 threads retire a fixed per-thread
     workload in far less than 4x the single-thread time — the
     utilization argument of the paper's introduction. *)
  let program =
    "addi r3, r0, 20\n\
     loop: addi r3, r3, -1\n\
     bne r3, r0, loop\n\
     halt\n"
  in
  let time ~threads =
    let sim, _t, _iss, cycles, _ =
      cosim ~threads ~kind:Melastic.Meb.Reduced ~limit:50000
        ~exe_latency:(Melastic.Mt_varlat.Random { max_latency = 3; seed = 11 })
        program
    in
    ignore sim;
    match cycles with Some c -> c | None -> Alcotest.fail "did not halt"
  in
  let t1 = time ~threads:1 in
  let t4 = time ~threads:4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 threads in < 2.5x single-thread time (%d vs %d)" t4 t1)
    true
    (float_of_int t4 < 2.5 *. float_of_int t1)

(* Random straight-line programs: each thread gets its own code block
   ending in stores to a private region, then halt. *)
let prop_random_programs =
  let gen_block st ~thread =
    let buf = Buffer.create 128 in
    Buffer.add_string buf (Printf.sprintf "addi r10, r0, %d\n" (thread * 32));
    let n_ops = 5 + Random.State.int st 10 in
    for _ = 1 to n_ops do
      let rd = 1 + Random.State.int st 8 in
      let rs = Random.State.int st 9 in
      let rt = Random.State.int st 9 in
      match Random.State.int st 8 with
      | 0 -> Buffer.add_string buf (Printf.sprintf "add r%d, r%d, r%d\n" rd rs rt)
      | 1 -> Buffer.add_string buf (Printf.sprintf "sub r%d, r%d, r%d\n" rd rs rt)
      | 2 -> Buffer.add_string buf (Printf.sprintf "xor r%d, r%d, r%d\n" rd rs rt)
      | 3 -> Buffer.add_string buf (Printf.sprintf "and r%d, r%d, r%d\n" rd rs rt)
      | 4 -> Buffer.add_string buf (Printf.sprintf "slt r%d, r%d, r%d\n" rd rs rt)
      | 5 ->
        Buffer.add_string buf
          (Printf.sprintf "addi r%d, r%d, %d\n" rd rs (Random.State.int st 2000 - 1000))
      | 6 -> Buffer.add_string buf (Printf.sprintf "mul r%d, r%d, r%d\n" rd rs rt)
      | _ ->
        Buffer.add_string buf
          (Printf.sprintf "ori r%d, r%d, %d\n" rd rs (Random.State.int st 4096))
    done;
    for k = 0 to 3 do
      Buffer.add_string buf (Printf.sprintf "sw r%d, %d(r10)\n" (1 + k) k)
    done;
    Buffer.add_string buf "halt\n";
    Buffer.contents buf
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:20 ~name:"random programs: pipeline matches ISS"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
       (fun seed ->
         let st = Random.State.make [| seed |] in
         let threads = 2 + Random.State.int st 3 in
         let kind =
           if Random.State.bool st then Melastic.Meb.Full else Melastic.Meb.Reduced
         in
         (* Concatenate per-thread blocks; record start PCs. *)
         let buf = Buffer.create 512 in
         let start_pcs = Array.make threads 0 in
         let pc = ref 0 in
         for t = 0 to threads - 1 do
           start_pcs.(t) <- !pc;
           let block = gen_block st ~thread:t in
           pc := !pc + List.length (Asm.assemble_words block);
           Buffer.add_string buf block
         done;
         let sim, t, iss, cycles, iss_ok =
           cosim ~threads ~kind ~start_pcs ~limit:20000 (Buffer.contents buf)
         in
         if not iss_ok || cycles = None then false
         else begin
           let ok = ref true in
           for th = 0 to threads - 1 do
             for r = 1 to 15 do
               if Iss.reg_value iss ~thread:th ~reg:r
                  <> Cpu.Mt_pipeline.read_reg sim t ~thread:th ~reg:r
               then ok := false
             done
           done;
           for a = 0 to 255 do
             if Iss.dmem_value iss a <> Cpu.Mt_pipeline.read_dmem sim t a then
               ok := false
           done;
           !ok
         end))

let kind_cases name f =
  List.map
    (fun kind ->
      Alcotest.test_case
        (Printf.sprintf "%s (%s)" name (Melastic.Meb.kind_to_string kind))
        `Quick (f kind))
    [ Melastic.Meb.Full; Melastic.Meb.Reduced ]

let suite =
  ( "cpu",
    [ Alcotest.test_case "encode/decode roundtrip" `Quick test_encode_decode_roundtrip;
      Alcotest.test_case "decode illegal" `Quick test_decode_illegal;
      Alcotest.test_case "asm basic" `Quick test_asm_basic;
      Alcotest.test_case "asm labels/branches" `Quick test_asm_labels_and_branches;
      Alcotest.test_case "asm errors" `Quick test_asm_errors;
      Alcotest.test_case "iss arith" `Quick test_iss_arith;
      Alcotest.test_case "iss fib" `Quick test_iss_fib;
      Alcotest.test_case "iss memory" `Quick test_iss_memory;
      Alcotest.test_case "iss jal/jr" `Quick test_iss_jal_jr;
      Alcotest.test_case "iss r0 immutable" `Quick test_iss_r0_immutable ]
    @ kind_cases "pipeline fib cosim" test_pipeline_fib
    @ kind_cases "pipeline stores cosim" test_pipeline_stores
    @ kind_cases "pipeline variable latency cosim" test_pipeline_variable_latency
    @ [ Alcotest.test_case "pipeline 8 threads (paper config)" `Quick
          test_pipeline_eight_threads;
        Alcotest.test_case "multithreading hides latency" `Quick
          test_multithreading_hides_latency;
        prop_random_programs ] )
