(* Netlist optimizer: directed folding cases plus the equivalence
   property — random circuits simulate identically before and after
   optimization. *)

module S = Hw.Signal

let les c = Fpga.Tech.les (Fpga.Tech.circuit_cost c)

let test_constant_folding () =
  let b = S.Builder.create () in
  let x = S.input b "x" 8 in
  (* (x & 0) | (3 + 4) -> const 7; mux with const sel folds away. *)
  let zero = S.land_ b x (S.zero b 8) in
  let seven = S.add b (S.of_int b ~width:8 3) (S.of_int b ~width:8 4) in
  let v = S.lor_ b zero seven in
  let m = S.mux b (S.of_int b ~width:1 1) [ x; v ] in
  ignore (S.output b "y" m);
  let c = Hw.Circuit.create b in
  let c', stats = Hw.Transform.optimize c in
  Alcotest.(check bool) "folded something" true (stats.Hw.Transform.folded > 0);
  Alcotest.(check bool) "fewer nodes" true
    (stats.Hw.Transform.nodes_after < stats.Hw.Transform.nodes_before);
  (* The output is now exactly the constant 7. *)
  let sim = Hw.Sim.create c' in
  Hw.Sim.poke_int sim "x" 123;
  Hw.Sim.settle sim;
  Alcotest.(check int) "y = 7" 7 (Hw.Sim.peek_int sim "y");
  Alcotest.(check int) "zero LEs left" 0 (les c')

let test_identity_operands () =
  let b = S.Builder.create () in
  let x = S.input b "x" 8 in
  let y1 = S.lxor_ b x (S.zero b 8) in
  let y2 = S.add b y1 (S.zero b 8) in
  let y3 = S.land_ b y2 (S.ones b 8) in
  let y4 = S.lnot b (S.lnot b y3) in
  ignore (S.output b "y" y4);
  let c' , _ = Hw.Transform.optimize (Hw.Circuit.create b) in
  Alcotest.(check int) "identities erased" 0 (les c');
  let sim = Hw.Sim.create c' in
  Hw.Sim.poke_int sim "x" 0xa5;
  Hw.Sim.settle sim;
  Alcotest.(check int) "passthrough" 0xa5 (Hw.Sim.peek_int sim "y")

let test_dead_code_swept () =
  let b = S.Builder.create () in
  let x = S.input b "x" 8 in
  (* A tower of unused logic. *)
  let rec tower i acc = if i = 0 then acc else tower (i - 1) (S.add b acc acc) in
  ignore (tower 10 x);
  ignore (S.output b "y" (S.add b x x));
  let c = Hw.Circuit.create b in
  let c', stats = Hw.Transform.optimize c in
  Alcotest.(check bool) "shrunk" true
    (stats.Hw.Transform.nodes_after < stats.Hw.Transform.nodes_before / 2);
  Alcotest.(check int) "one adder left" 8 (les c')

let test_registers_and_memories_survive () =
  let b = S.Builder.create () in
  let x = S.input b "x" 8 in
  let acc = S.reg_fb b ~width:8 (fun q -> S.add b q x) in
  let mem = S.Memory.create b ~name:"m" ~size:4 ~width:8 () in
  S.Memory.write b mem ~we:(S.vdd b) ~addr:(S.of_int b ~width:2 1) ~data:acc;
  ignore (S.output b "r" (S.Memory.read_async b mem ~addr:(S.of_int b ~width:2 1)));
  let c', _ = Hw.Transform.optimize (Hw.Circuit.create b) in
  let sim = Hw.Sim.create c' in
  Hw.Sim.poke_int sim "x" 5;
  Hw.Sim.cycles sim 3;
  (* acc: 0,5,10,15 -> mem[1] written each cycle with pre-edge acc. *)
  Alcotest.(check int) "state machine preserved" 10 (Hw.Sim.peek_int sim "r")

(* Equivalence property: a random DAG of operations with registers
   simulates identically before and after optimization over a random
   stimulus. *)
let prop_equivalence =
  let gen_circuit st =
    let b = S.Builder.create () in
    let x = S.input b "x" 8 and y = S.input b "y" 8 in
    let pool = ref [ x; y; S.of_int b ~width:8 (Random.State.int st 256) ] in
    let pick () = List.nth !pool (Random.State.int st (List.length !pool)) in
    for _ = 1 to 15 + Random.State.int st 20 do
      let a = pick () and c = pick () in
      let node =
        match Random.State.int st 10 with
        | 0 -> S.land_ b a c
        | 1 -> S.lor_ b a c
        | 2 -> S.lxor_ b a c
        | 3 -> S.add b a c
        | 4 -> S.sub b a c
        | 5 -> S.lnot b a
        | 6 -> S.mux2 b (S.bit b a 0) c a
        | 7 -> S.reg b a
        | 8 -> S.mux b (S.select b a ~hi:1 ~lo:0) [ a; c; pick () ]
        | _ -> S.concat_msb b [ S.select b a ~hi:3 ~lo:0; S.select b c ~hi:7 ~lo:4 ]
      in
      pool := node :: !pool
    done;
    ignore (S.output b "o1" (pick ()));
    ignore (S.output b "o2" (pick ()));
    Hw.Circuit.create b
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"optimize preserves behaviour"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
       (fun seed ->
         let st = Random.State.make [| seed |] in
         let c = gen_circuit st in
         let c', _ = Hw.Transform.optimize c in
         let s1 = Hw.Sim.create c and s2 = Hw.Sim.create c' in
         let ok = ref true in
         for _ = 1 to 25 do
           let vx = Random.State.int st 256 and vy = Random.State.int st 256 in
           Hw.Sim.poke_int s1 "x" vx; Hw.Sim.poke_int s1 "y" vy;
           Hw.Sim.poke_int s2 "x" vx; Hw.Sim.poke_int s2 "y" vy;
           Hw.Sim.cycle s1; Hw.Sim.cycle s2;
           if Hw.Sim.peek_int s1 "o1" <> Hw.Sim.peek_int s2 "o1"
              || Hw.Sim.peek_int s1 "o2" <> Hw.Sim.peek_int s2 "o2"
           then ok := false
         done;
         !ok))

let test_big_designs_optimize () =
  (* The Table I designs must survive optimization and shrink. *)
  let md5 = Md5.Md5_circuit.circuit ~kind:Melastic.Meb.Reduced ~threads:8 () in
  let md5', stats = Hw.Transform.optimize md5 in
  Alcotest.(check bool) "md5 shrinks" true
    (stats.Hw.Transform.nodes_after < stats.Hw.Transform.nodes_before);
  Alcotest.(check bool) "md5 area not larger" true (les md5' <= les md5);
  let cpu, _ = Cpu.Mt_pipeline.circuit (Cpu.Mt_pipeline.default_config ~threads:8) in
  let cpu', _ = Hw.Transform.optimize cpu in
  Alcotest.(check bool) "cpu area not larger" true (les cpu' <= les cpu)

let suite =
  ( "transform",
    [ Alcotest.test_case "constant folding" `Quick test_constant_folding;
      Alcotest.test_case "identity operands" `Quick test_identity_operands;
      Alcotest.test_case "dead code swept" `Quick test_dead_code_swept;
      Alcotest.test_case "state survives" `Quick test_registers_and_memories_survive;
      Alcotest.test_case "big designs optimize" `Quick test_big_designs_optimize;
      prop_equivalence ] )
