(* A suite of directed programs co-simulated on the pipeline against
   the ISS, exercising the parts of the ISA the random generator
   rarely composes: nested control flow, JAL/JR call/return, SLTU/LUI,
   memory-dependent loops and cross-iteration state. *)

module Isa = Cpu.Isa
module Asm = Cpu.Asm
module Iss = Cpu.Iss

let cosim ?(threads = 2) ?(kind = Melastic.Meb.Reduced) ?start_pcs ~limit program =
  let words = Asm.assemble_words program in
  let start_pcs = match start_pcs with Some p -> p | None -> Array.make threads 0 in
  let config =
    { (Cpu.Mt_pipeline.default_config ~threads) with
      Cpu.Mt_pipeline.kind; start_pcs; imem_size = 512; dmem_size = 512 }
  in
  let circuit, t = Cpu.Mt_pipeline.circuit config in
  let sim = Hw.Sim.create circuit in
  Cpu.Mt_pipeline.load_program sim t words;
  Hw.Sim.settle sim;
  let cycles = Cpu.Mt_pipeline.run_until_halted sim ~limit in
  let imem = Array.make 512 0 in
  List.iteri (fun i w -> imem.(i) <- w) words;
  let iss = Iss.create ~imem ~dmem_size:512 ~threads ~start_pcs in
  let iss_ok = Iss.run ~max_steps:500_000 iss in
  Alcotest.(check bool) "iss halted" true iss_ok;
  Alcotest.(check bool) "pipeline halted" true (cycles <> None);
  (sim, t, iss)

let check_regs_and_mem sim t iss ~threads =
  for th = 0 to threads - 1 do
    for r = 1 to Isa.num_regs - 1 do
      Alcotest.(check int)
        (Printf.sprintf "t%d r%d" th r)
        (Iss.reg_value iss ~thread:th ~reg:r)
        (Cpu.Mt_pipeline.read_reg sim t ~thread:th ~reg:r)
    done
  done;
  for a = 0 to 511 do
    Alcotest.(check int) (Printf.sprintf "dmem[%d]" a) (Iss.dmem_value iss a)
      (Cpu.Mt_pipeline.read_dmem sim t a)
  done

let test_gcd () =
  (* gcd(1071, 462) = 21, by repeated subtraction. *)
  let program =
    "addi r1, r0, 1071\n\
     addi r2, r0, 462\n\
     loop: beq r1, r2, done\n\
     blt r1, r2, swap\n\
     sub r1, r1, r2\n\
     j loop\n\
     swap: sub r2, r2, r1\n\
     j loop\n\
     done: halt\n"
  in
  let sim, t, iss = cosim ~threads:2 ~limit:30000 program in
  check_regs_and_mem sim t iss ~threads:2;
  Alcotest.(check int) "gcd = 21" 21 (Cpu.Mt_pipeline.read_reg sim t ~thread:0 ~reg:1)

let test_bubble_sort () =
  (* Store 8 descending values, bubble-sort them in data memory. *)
  let program =
    "; fill dmem[base..base+7] with 80,70,...,10 (base = r10)\n\
     addi r10, r0, 0\n\
     addi r1, r0, 8\n\
     addi r2, r0, 80\n\
     mv r3, r10\n\
     fill: sw r2, 0(r3)\n\
     addi r2, r2, -10\n\
     addi r3, r3, 1\n\
     addi r1, r1, -1\n\
     bne r1, r0, fill\n\
     ; bubble sort\n\
     addi r4, r0, 7          ; outer counter\n\
     outer: mv r3, r10\n\
     mv r5, r4\n\
     inner: lw r6, 0(r3)\n\
     lw r7, 1(r3)\n\
     bge r7, r6, noswap\n\
     sw r7, 0(r3)\n\
     sw r6, 1(r3)\n\
     noswap: addi r3, r3, 1\n\
     addi r5, r5, -1\n\
     bne r5, r0, inner\n\
     addi r4, r4, -1\n\
     bne r4, r0, outer\n\
     halt\n"
  in
  let sim, t, iss = cosim ~threads:1 ~limit:60000 program in
  check_regs_and_mem sim t iss ~threads:1;
  for i = 0 to 7 do
    Alcotest.(check int)
      (Printf.sprintf "sorted[%d]" i)
      ((i + 1) * 10)
      (Cpu.Mt_pipeline.read_dmem sim t i)
  done

let test_call_return_chain () =
  (* Two nested calls through JAL/JR with distinct link registers. *)
  let program =
    "jal r15, outer\n\
     addi r9, r0, 3       ; after return\n\
     halt\n\
     outer: addi r1, r1, 1\n\
     jal r14, inner\n\
     addi r1, r1, 16\n\
     jr r15\n\
     inner: addi r1, r1, 4\n\
     jr r14\n"
  in
  let sim, t, iss = cosim ~threads:2 ~limit:20000 program in
  check_regs_and_mem sim t iss ~threads:2;
  Alcotest.(check int) "r1 accumulated through calls" 21
    (Cpu.Mt_pipeline.read_reg sim t ~thread:0 ~reg:1);
  Alcotest.(check int) "resumed after return" 3
    (Cpu.Mt_pipeline.read_reg sim t ~thread:0 ~reg:9)

let test_lui_and_unsigned_compare () =
  let program =
    "lui r1, 8           ; r1 = 8 << 18 = 2097152\n\
     ori r1, r1, 100\n\
     addi r2, r0, -1     ; 0xffffffff\n\
     sltu r3, r1, r2     ; unsigned: r1 < r2 -> 1\n\
     slt r4, r2, r1      ; signed: -1 < big -> 1\n\
     srl r5, r1, r0      ; shift by r0 = 0\n\
     addi r6, r0, 4\n\
     srl r7, r1, r6      ; (8<<18 | 100) >> 4\n\
     halt\n"
  in
  let sim, t, iss = cosim ~threads:1 ~limit:10000 program in
  check_regs_and_mem sim t iss ~threads:1;
  Alcotest.(check int) "lui|ori" ((8 lsl 18) lor 100)
    (Cpu.Mt_pipeline.read_reg sim t ~thread:0 ~reg:1);
  Alcotest.(check int) "sltu" 1 (Cpu.Mt_pipeline.read_reg sim t ~thread:0 ~reg:3);
  Alcotest.(check int) "slt" 1 (Cpu.Mt_pipeline.read_reg sim t ~thread:0 ~reg:4)

let test_shift_edge_cases () =
  let program =
    "addi r1, r0, -1      ; 0xffffffff\n\
     addi r2, r0, 31\n\
     sra r3, r1, r2       ; arithmetic: stays -1\n\
     srl r4, r1, r2       ; logical: 1\n\
     addi r5, r0, 1\n\
     sll r6, r5, r2       ; 0x80000000\n\
     sll r7, r6, r5       ; shifts out: 0\n\
     halt\n"
  in
  let sim, t, iss = cosim ~threads:1 ~limit:10000 program in
  check_regs_and_mem sim t iss ~threads:1;
  Alcotest.(check int) "sra -1 >> 31" 0xffffffff
    (Cpu.Mt_pipeline.read_reg sim t ~thread:0 ~reg:3);
  Alcotest.(check int) "srl -1 >> 31" 1 (Cpu.Mt_pipeline.read_reg sim t ~thread:0 ~reg:4);
  Alcotest.(check int) "1 << 31" 0x80000000
    (Cpu.Mt_pipeline.read_reg sim t ~thread:0 ~reg:6)

let test_memcpy_threads () =
  (* Each thread copies its own 8-word block; thread regions disjoint. *)
  let threads = 4 in
  let buf = Buffer.create 512 in
  for t = 0 to threads - 1 do
    Buffer.add_string buf
      (Printf.sprintf "addi r10, r0, %d\naddi r11, r0, %d\nj main\n" (t * 32)
         ((t * 32) + 16))
  done;
  Buffer.add_string buf
    "main: addi r1, r0, 8\n\
     mv r2, r10\n\
     seed: sw r2, 0(r2)\n\
     addi r2, r2, 1\n\
     addi r1, r1, -1\n\
     bne r1, r0, seed\n\
     addi r1, r0, 8\n\
     mv r2, r10\n\
     mv r3, r11\n\
     copy: lw r4, 0(r2)\n\
     sw r4, 0(r3)\n\
     addi r2, r2, 1\n\
     addi r3, r3, 1\n\
     addi r1, r1, -1\n\
     bne r1, r0, copy\n\
     halt\n";
  let start_pcs = Array.init threads (fun t -> 3 * t) in
  let sim, t, iss =
    cosim ~threads ~start_pcs ~limit:60000 (Buffer.contents buf)
  in
  check_regs_and_mem sim t iss ~threads;
  for th = 0 to threads - 1 do
    for i = 0 to 7 do
      Alcotest.(check int)
        (Printf.sprintf "thread %d copy[%d]" th i)
        ((th * 32) + i)
        (Cpu.Mt_pipeline.read_dmem sim t ((th * 32) + 16 + i))
    done
  done

let test_full_meb_variant_matches () =
  (* The same program must produce identical architectural state on
     full and reduced pipelines. *)
  let program =
    "addi r1, r0, 10\n\
     loop: mul r2, r1, r1\n\
     add r3, r3, r2\n\
     addi r1, r1, -1\n\
     bne r1, r0, loop\n\
     halt\n"
  in
  let regs kind =
    let sim, t, _ = cosim ~threads:2 ~kind ~limit:30000 program in
    List.init 15 (fun r -> Cpu.Mt_pipeline.read_reg sim t ~thread:0 ~reg:(r + 1))
  in
  Alcotest.(check (list int)) "full == reduced" (regs Melastic.Meb.Full)
    (regs Melastic.Meb.Reduced)

(* Every opcode individually: a minimal program per instruction,
   co-simulated against the ISS.  Catches decode/execute wiring bugs
   the bigger programs might mask. *)
let single_opcode_programs =
  [ ("NOP", "nop\nhalt\n");
    ("ADD", "addi r1, r0, 5\naddi r2, r0, 9\nadd r3, r1, r2\nhalt\n");
    ("SUB", "addi r1, r0, 5\naddi r2, r0, 9\nsub r3, r1, r2\nhalt\n");
    ("AND", "addi r1, r0, 12\naddi r2, r0, 10\nand r3, r1, r2\nhalt\n");
    ("OR", "addi r1, r0, 12\naddi r2, r0, 10\nor r3, r1, r2\nhalt\n");
    ("XOR", "addi r1, r0, 12\naddi r2, r0, 10\nxor r3, r1, r2\nhalt\n");
    ("SLT", "addi r1, r0, -3\naddi r2, r0, 2\nslt r3, r1, r2\nslt r4, r2, r1\nhalt\n");
    ("SLTU", "addi r1, r0, -3\naddi r2, r0, 2\nsltu r3, r1, r2\nsltu r4, r2, r1\nhalt\n");
    ("SLL", "addi r1, r0, 3\naddi r2, r0, 4\nsll r3, r1, r2\nhalt\n");
    ("SRL", "addi r1, r0, -1\naddi r2, r0, 4\nsrl r3, r1, r2\nhalt\n");
    ("SRA", "addi r1, r0, -16\naddi r2, r0, 2\nsra r3, r1, r2\nhalt\n");
    ("MUL", "addi r1, r0, 123\naddi r2, r0, 77\nmul r3, r1, r2\nhalt\n");
    ("ADDI", "addi r1, r0, -100\nhalt\n");
    ("ANDI", "addi r1, r0, -1\nandi r2, r1, 4095\nhalt\n");
    ("ORI", "ori r1, r0, 4095\nhalt\n");
    ("XORI", "addi r1, r0, 255\nxori r2, r1, 4095\nhalt\n");
    ("SLTI", "addi r1, r0, -5\nslti r2, r1, 0\nslti r3, r1, -10\nhalt\n");
    ("LUI", "lui r1, 12345\nhalt\n");
    ("LW/SW", "addi r1, r0, 42\nsw r1, 7(r0)\nlw r2, 7(r0)\nhalt\n");
    ("BEQ", "addi r1, r0, 1\nbeq r1, r1, over\naddi r2, r0, 99\nover: halt\n");
    ("BNE", "addi r1, r0, 1\nbne r1, r0, over\naddi r2, r0, 99\nover: halt\n");
    ("BLT", "addi r1, r0, -1\nblt r1, r0, over\naddi r2, r0, 99\nover: halt\n");
    ("BGE", "bge r0, r0, over\naddi r2, r0, 99\nover: halt\n");
    ("J", "j over\naddi r2, r0, 99\nover: halt\n");
    ("JAL/JR", "jal r15, f\nhalt\nf: addi r1, r0, 7\njr r15\n") ]

let test_single_opcodes () =
  List.iter
    (fun (name, program) ->
      let sim, t, iss = cosim ~threads:1 ~limit:5000 program in
      for r = 1 to Isa.num_regs - 1 do
        Alcotest.(check int)
          (Printf.sprintf "%s r%d" name r)
          (Iss.reg_value iss ~thread:0 ~reg:r)
          (Cpu.Mt_pipeline.read_reg sim t ~thread:0 ~reg:r)
      done;
      for a = 0 to 15 do
        Alcotest.(check int)
          (Printf.sprintf "%s dmem[%d]" name a)
          (Iss.dmem_value iss a)
          (Cpu.Mt_pipeline.read_dmem sim t a)
      done)
    single_opcode_programs

let suite =
  ( "cpu-programs",
    [ Alcotest.test_case "every opcode vs ISS" `Quick test_single_opcodes;
      Alcotest.test_case "gcd by subtraction" `Quick test_gcd;
      Alcotest.test_case "bubble sort in dmem" `Quick test_bubble_sort;
      Alcotest.test_case "call/return chain" `Quick test_call_return_chain;
      Alcotest.test_case "lui and unsigned compare" `Quick test_lui_and_unsigned_compare;
      Alcotest.test_case "shift edge cases" `Quick test_shift_edge_cases;
      Alcotest.test_case "memcpy across threads" `Quick test_memcpy_threads;
      Alcotest.test_case "full/reduced architectural equality" `Quick
        test_full_meb_variant_matches ] )
