(* Tests for the single-thread elastic layer: EB FIFO semantics,
   throughput/capacity, and the control operators. *)

module S = Hw.Signal

let build_pipeline ~stages ~width =
  let b = S.Builder.create () in
  let src = Elastic.Channel.source b ~name:"src" ~width in
  let out, _ebs = Elastic.Eb.chain b ~n:stages src in
  Elastic.Channel.sink b ~name:"snk" out;
  Hw.Sim.create (Hw.Circuit.create b)

let driver ~stages ~width =
  let sim = build_pipeline ~stages ~width in
  Workload.St_driver.create sim ~src:"src" ~snk:"snk" ~width

let ints l = List.map (fun b -> Bits.to_int b) l

let test_eb_passes_data () =
  let d = driver ~stages:1 ~width:8 in
  List.iter (Workload.St_driver.push_int d) [ 1; 2; 3; 4; 5 ];
  Workload.St_driver.run d 20;
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3; 4; 5 ]
    (ints (Workload.St_driver.output_data d))

let test_eb_full_throughput () =
  (* With an always-ready sink, a chain of EBs sustains one transfer
     per cycle: n items exit in n + latency cycles. *)
  let d = driver ~stages:3 ~width:8 in
  for i = 1 to 20 do Workload.St_driver.push_int d i done;
  Workload.St_driver.run d 40;
  let out = Workload.St_driver.outputs d in
  Alcotest.(check int) "all delivered" 20 (List.length out);
  let cycles = List.map (fun e -> e.Workload.St_driver.cycle) out in
  (* Consecutive outputs on consecutive cycles = 100% throughput. *)
  let rec consecutive = function
    | a :: (b :: _ as rest) -> a + 1 = b && consecutive rest
    | _ -> true
  in
  Alcotest.(check bool) "back-to-back" true (consecutive cycles)

let test_eb_capacity_two () =
  (* Sink never ready: a single EB absorbs exactly two items. *)
  let d = driver ~stages:1 ~width:8 in
  Workload.St_driver.set_sink_ready d (fun _ -> false);
  for i = 1 to 10 do Workload.St_driver.push_int d i done;
  Workload.St_driver.run d 20;
  Alcotest.(check int) "accepted" 2 (List.length (Workload.St_driver.inputs d));
  Alcotest.(check int) "none out" 0 (List.length (Workload.St_driver.outputs d))

let test_eb_chain_capacity () =
  (* n stalled EBs absorb 2n items. *)
  let d = driver ~stages:4 ~width:8 in
  Workload.St_driver.set_sink_ready d (fun _ -> false);
  for i = 1 to 20 do Workload.St_driver.push_int d i done;
  Workload.St_driver.run d 40;
  Alcotest.(check int) "accepted" 8 (List.length (Workload.St_driver.inputs d))

let test_eb_stall_recovery () =
  let d = driver ~stages:2 ~width:8 in
  (* Stall the sink for a window, then release. *)
  Workload.St_driver.set_sink_ready d (fun c -> c < 3 || c >= 12);
  for i = 1 to 10 do Workload.St_driver.push_int d i done;
  Workload.St_driver.run d 40;
  Alcotest.(check (list int)) "order preserved across stall"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (ints (Workload.St_driver.output_data d))

(* Property: an EB chain under a random stall pattern is a FIFO. *)
let prop_eb_fifo =
  let arb =
    QCheck.make
      ~print:(fun (stages, data, seed) ->
        Printf.sprintf "stages=%d data=[%s] seed=%d" stages
          (String.concat ";" (List.map string_of_int data))
          seed)
      QCheck.Gen.(
        int_range 1 4 >>= fun stages ->
        list_size (int_range 1 30) (int_bound 255) >>= fun data ->
        int_bound 10000 >>= fun seed -> return (stages, data, seed))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"EB chain is a FIFO under random stalls" arb
       (fun (stages, data, seed) ->
         let d = driver ~stages ~width:8 in
         let st = Random.State.make [| seed |] in
         let script = Array.init 500 (fun _ -> Random.State.bool st) in
         Workload.St_driver.set_sink_ready d (fun c -> script.(c mod 500));
         List.iter (Workload.St_driver.push_int d) data;
         Workload.St_driver.run d (List.length data * 4 + 50);
         ints (Workload.St_driver.output_data d) = data))

let test_join_pairs () =
  let b = S.Builder.create () in
  let a = Elastic.Channel.source b ~name:"a" ~width:8 in
  let c = Elastic.Channel.source b ~name:"c" ~width:8 in
  let eb_a = Elastic.Eb.create ~name:"eba" b a in
  let eb_c = Elastic.Eb.create ~name:"ebc" b c in
  let j = Elastic.Join.create b eb_a.Elastic.Eb.out eb_c.Elastic.Eb.out in
  Elastic.Channel.sink b ~name:"snk" j;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  (* Feed a faster than c; outputs must still be index-aligned pairs. *)
  let qa = Queue.create () and qc = Queue.create () in
  List.iter (fun x -> Queue.add x qa) [ 1; 2; 3; 4 ];
  List.iter (fun x -> Queue.add x qc) [ 10; 20; 30; 40 ];
  let outs = ref [] in
  Hw.Sim.poke_int sim "snk_ready" 1;
  for cyc = 0 to 29 do
    (* c is throttled: only offered every third cycle. *)
    (match Queue.peek_opt qa with
     | Some x -> Hw.Sim.poke_int sim "a_valid" 1; Hw.Sim.poke_int sim "a_data" x
     | None -> Hw.Sim.poke_int sim "a_valid" 0);
    (match Queue.peek_opt qc with
     | Some x when cyc mod 3 = 0 ->
       Hw.Sim.poke_int sim "c_valid" 1; Hw.Sim.poke_int sim "c_data" x
     | _ -> Hw.Sim.poke_int sim "c_valid" 0);
    Hw.Sim.settle sim;
    if Hw.Sim.peek_bool sim "a_ready" && not (Queue.is_empty qa)
    then ignore (Queue.pop qa);
    if Hw.Sim.peek_bool sim "c_ready" && cyc mod 3 = 0 && not (Queue.is_empty qc)
    then ignore (Queue.pop qc);
    if Hw.Sim.peek_bool sim "snk_fire" then
      outs := Hw.Sim.peek_int sim "snk_data" :: !outs;
    Hw.Sim.cycle sim
  done;
  let expected = List.map (fun (x, y) -> (x lsl 8) lor y) [ (1, 10); (2, 20); (3, 30); (4, 40) ] in
  Alcotest.(check (list int)) "joined pairs" expected (List.rev !outs)

let test_eager_fork_delivers_to_both () =
  let b = S.Builder.create () in
  let src = Elastic.Channel.source b ~name:"src" ~width:8 in
  let eb = Elastic.Eb.create b src in
  (match Elastic.Fork.eager b eb.Elastic.Eb.out ~n:2 with
   | [ o1; o2 ] ->
     Elastic.Channel.sink b ~name:"s1" o1;
     Elastic.Channel.sink b ~name:"s2" o2
   | _ -> assert false);
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let q = Queue.create () in
  List.iter (fun x -> Queue.add x q) [ 5; 6; 7 ];
  let o1 = ref [] and o2 = ref [] in
  for cyc = 0 to 29 do
    (* Sinks stall on different, interleaved patterns. *)
    Hw.Sim.poke_int sim "s1_ready" (if cyc mod 2 = 0 then 1 else 0);
    Hw.Sim.poke_int sim "s2_ready" (if cyc mod 3 = 0 then 1 else 0);
    (match Queue.peek_opt q with
     | Some x -> Hw.Sim.poke_int sim "src_valid" 1; Hw.Sim.poke_int sim "src_data" x
     | None -> Hw.Sim.poke_int sim "src_valid" 0);
    Hw.Sim.settle sim;
    if Hw.Sim.peek_bool sim "src_ready" && not (Queue.is_empty q) then
      ignore (Queue.pop q);
    if Hw.Sim.peek_bool sim "s1_fire" then o1 := Hw.Sim.peek_int sim "s1_data" :: !o1;
    if Hw.Sim.peek_bool sim "s2_fire" then o2 := Hw.Sim.peek_int sim "s2_data" :: !o2;
    Hw.Sim.cycle sim
  done;
  Alcotest.(check (list int)) "sink1 got all" [ 5; 6; 7 ] (List.rev !o1);
  Alcotest.(check (list int)) "sink2 got all" [ 5; 6; 7 ] (List.rev !o2)

let test_lazy_fork_into_join_is_cyclic () =
  (* The textbook combinational cycle: a lazy fork feeding a join. *)
  let b = S.Builder.create () in
  let src = Elastic.Channel.source b ~name:"src" ~width:8 in
  let eb = Elastic.Eb.create b src in
  (match Elastic.Fork.lazy_ b eb.Elastic.Eb.out ~n:2 with
   | [ o1; o2 ] ->
     let j = Elastic.Join.create b o1 o2 in
     Elastic.Channel.sink b ~name:"snk" j
   | _ -> assert false);
  (try
     ignore (Hw.Circuit.create b);
     Alcotest.fail "expected a combinational cycle"
   with Hw.Circuit.Combinational_cycle _ -> ())

let test_eager_fork_into_join_is_fine () =
  let b = S.Builder.create () in
  let src = Elastic.Channel.source b ~name:"src" ~width:8 in
  let eb = Elastic.Eb.create b src in
  (match Elastic.Fork.eager b eb.Elastic.Eb.out ~n:2 with
   | [ o1; o2 ] ->
     let j = Elastic.Join.create b o1 o2 in
     Elastic.Channel.sink b ~name:"snk" j
   | _ -> assert false);
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let q = Queue.create () in
  List.iter (fun x -> Queue.add x q) [ 1; 2; 3 ];
  let outs = ref [] in
  Hw.Sim.poke_int sim "snk_ready" 1;
  for _ = 0 to 19 do
    (match Queue.peek_opt q with
     | Some x -> Hw.Sim.poke_int sim "src_valid" 1; Hw.Sim.poke_int sim "src_data" x
     | None -> Hw.Sim.poke_int sim "src_valid" 0);
    Hw.Sim.settle sim;
    if Hw.Sim.peek_bool sim "src_ready" && not (Queue.is_empty q) then
      ignore (Queue.pop q);
    if Hw.Sim.peek_bool sim "snk_fire" then
      outs := Hw.Sim.peek_int sim "snk_data" :: !outs;
    Hw.Sim.cycle sim
  done;
  let expected = List.map (fun x -> (x lsl 8) lor x) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "self-join" expected (List.rev !outs)

let test_branch_merge_roundtrip () =
  (* Route odd values through one path, even through the other, merge
     back: the per-path order is preserved. *)
  let b = S.Builder.create () in
  let src = Elastic.Channel.source b ~name:"src" ~width:8 in
  let eb = Elastic.Eb.create b src in
  let cond = S.bit b eb.Elastic.Eb.out.Elastic.Channel.data 0 in
  let br = Elastic.Branch.create b eb.Elastic.Eb.out ~cond in
  let odd = Elastic.Eb.create ~name:"odd" b br.Elastic.Branch.out_true in
  let even = Elastic.Eb.create ~name:"even" b br.Elastic.Branch.out_false in
  let merged = Elastic.Merge.create b odd.Elastic.Eb.out even.Elastic.Eb.out in
  Elastic.Channel.sink b ~name:"snk" merged;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let d = Workload.St_driver.create sim ~src:"src" ~snk:"snk" ~width:8 in
  let data = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  List.iter (Workload.St_driver.push_int d) data;
  Workload.St_driver.run d 60;
  let out = ints (Workload.St_driver.output_data d) in
  Alcotest.(check int) "all out" 8 (List.length out);
  let odds = List.filter (fun x -> x land 1 = 1) out in
  let evens = List.filter (fun x -> x land 1 = 0) out in
  Alcotest.(check (list int)) "odd order" [ 1; 3; 5; 7 ] odds;
  Alcotest.(check (list int)) "even order" [ 2; 4; 6; 8 ] evens

let test_varlat_fixed () =
  let b = S.Builder.create () in
  let src = Elastic.Channel.source b ~name:"src" ~width:8 in
  let v =
    Elastic.Varlat.create b src ~latency:(Elastic.Varlat.Fixed 3)
      ~f:(fun b d -> S.add b d (S.of_int b ~width:8 100))
  in
  Elastic.Channel.sink b ~name:"snk" v;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let d = Workload.St_driver.create sim ~src:"src" ~snk:"snk" ~width:8 in
  List.iter (Workload.St_driver.push_int d) [ 1; 2; 3 ];
  Workload.St_driver.run d 40;
  let out = Workload.St_driver.outputs d in
  Alcotest.(check (list int)) "computed" [ 101; 102; 103 ]
    (ints (List.map (fun e -> e.Workload.St_driver.data) out));
  (* Each token spends >= 3 cycles inside. *)
  let in_cycles = List.map (fun e -> e.Workload.St_driver.cycle) (Workload.St_driver.inputs d) in
  let out_cycles = List.map (fun e -> e.Workload.St_driver.cycle) out in
  List.iter2
    (fun i o -> Alcotest.(check bool) "latency >= 3" true (o - i >= 3))
    in_cycles out_cycles

let test_varlat_random_order_preserved () =
  let b = S.Builder.create () in
  let src = Elastic.Channel.source b ~name:"src" ~width:8 in
  let v =
    Elastic.Varlat.create b src
      ~latency:(Elastic.Varlat.Random { max_latency = 5; seed = 7 })
  in
  Elastic.Channel.sink b ~name:"snk" v;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let d = Workload.St_driver.create sim ~src:"src" ~snk:"snk" ~width:8 in
  let data = List.init 15 (fun i -> i + 1) in
  List.iter (Workload.St_driver.push_int d) data;
  Workload.St_driver.run d 200;
  Alcotest.(check (list int)) "order preserved" data
    (ints (Workload.St_driver.output_data d))

let suite =
  ( "elastic",
    [ Alcotest.test_case "EB passes data" `Quick test_eb_passes_data;
      Alcotest.test_case "EB full throughput" `Quick test_eb_full_throughput;
      Alcotest.test_case "EB capacity 2" `Quick test_eb_capacity_two;
      Alcotest.test_case "EB chain capacity" `Quick test_eb_chain_capacity;
      Alcotest.test_case "EB stall recovery" `Quick test_eb_stall_recovery;
      prop_eb_fifo;
      Alcotest.test_case "join pairs tokens" `Quick test_join_pairs;
      Alcotest.test_case "eager fork" `Quick test_eager_fork_delivers_to_both;
      Alcotest.test_case "lazy fork + join detected cyclic" `Quick
        test_lazy_fork_into_join_is_cyclic;
      Alcotest.test_case "eager fork + join works" `Quick test_eager_fork_into_join_is_fine;
      Alcotest.test_case "branch/merge roundtrip" `Quick test_branch_merge_roundtrip;
      Alcotest.test_case "varlat fixed" `Quick test_varlat_fixed;
      Alcotest.test_case "varlat random order" `Quick test_varlat_random_order_preserved ] )
