(** MEB output-arbitration policy.

    {!Ready_aware} grants only threads whose downstream ready is
    already high (the paper's arbiter that "takes into account which
    threads are ready downstream"); every grant transfers.  The grant
    then depends combinationally on downstream ready: at an M-Join at
    most one producer may use it (leader/follower rule) or the
    elaborator rejects the cycle.

    {!Valid_only} grants among buffered threads regardless of
    downstream readiness: grants can fail to transfer (wasting the
    slot under contention) but the control is acyclic in any topology;
    it is also what a {!Barrier} needs upstream, since arrivals are
    observed through valid while ready is held low. *)

type t = Ready_aware | Valid_only

val to_string : t -> string

(** Thread-interleaving granularity (paper Section I): {!Fine} may
    switch the granted thread every cycle; [Coarse q] keeps the winner
    for up to [q] consecutive grants while it has data. *)
type granularity = Fine | Coarse of int

val granularity_to_string : granularity -> string
