(** M-Branch (paper Fig. 7c): steer the active thread's token by a
    condition computed from the shared data bus; the asserted valid
    identifies which thread the condition belongs to. *)

module S := Hw.Signal

type t = { out_true : Mt_channel.t; out_false : Mt_channel.t }

val create : S.builder -> Mt_channel.t -> cond:S.t -> t
