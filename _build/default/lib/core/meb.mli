(** Uniform view over {!Meb_full} and {!Meb_reduced}, so whole designs
    can be instantiated with either buffer kind and compared — the
    Table I experiment. *)

module S := Hw.Signal

type kind = Full | Reduced

val kind_to_string : kind -> string

type t = { out : Mt_channel.t; occupancy : S.t; grant : S.t }

val create :
  ?name:string -> ?policy:Policy.t -> ?granularity:Policy.granularity ->
  kind:kind -> S.builder -> Mt_channel.t -> t

val pipeline :
  ?name:string -> ?policy:Policy.t -> ?granularity:Policy.granularity ->
  ?f:(S.builder -> S.t -> S.t) ->
  kind:kind -> S.builder -> stages:int -> Mt_channel.t -> Mt_channel.t * t list

val capacity : kind:kind -> threads:int -> int
(** Buffer slots of one MEB: [2 * threads] (full) or [threads + 1]
    (reduced). *)
