(** M-Join (paper Fig. 7a): per-thread joins over two multithreaded
    channels — thread [i] fires when both inputs carry its data.

    Composition rule: at most one of the joined producers may use the
    {!Policy.Ready_aware} arbitration (leader/follower), otherwise the
    grant/ready dependency forms a combinational cycle that the
    elaborator rejects. *)

module S := Hw.Signal

val create :
  ?combine:(S.builder -> S.t -> S.t -> S.t) ->
  S.builder -> Mt_channel.t -> Mt_channel.t -> Mt_channel.t
