(* Uniform view over the two MEB implementations, so that whole designs
   (MD5, the processor) can be instantiated with either buffer kind and
   compared — exactly the experiment of Table I. *)

module S = Hw.Signal

type kind = Full | Reduced

let kind_to_string = function Full -> "full" | Reduced -> "reduced"

type t = {
  out : Mt_channel.t;
  occupancy : S.t;
  grant : S.t;
}

let create ?name ?policy ?granularity ~kind b input =
  match kind with
  | Full ->
    let m = Meb_full.create ?name ?policy ?granularity b input in
    { out = m.Meb_full.out; occupancy = m.Meb_full.occupancy; grant = m.Meb_full.grant }
  | Reduced ->
    let m = Meb_reduced.create ?name ?policy ?granularity b input in
    { out = m.Meb_reduced.out;
      occupancy = m.Meb_reduced.occupancy;
      grant = m.Meb_reduced.grant }

let pipeline ?(name = "meb") ?policy ?granularity ?f ~kind b ~stages (input : Mt_channel.t) =
  let rec go i ch acc =
    if i >= stages then (ch, List.rev acc)
    else begin
      let ch = match f with None -> ch | Some f -> Mt_channel.map b ch ~f in
      let meb =
        create ~name:(Printf.sprintf "%s%d" name i) ?policy ?granularity ~kind b ch
      in
      go (i + 1) meb.out (meb :: acc)
    end
  in
  go 0 input []

(* Slot capacity of one MEB for [threads] threads. *)
let capacity ~kind ~threads =
  match kind with Full -> 2 * threads | Reduced -> threads + 1
