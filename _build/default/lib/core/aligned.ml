(* Aligned MEB pair for M-Join inputs.

   Joining two independently-arbitrated MEBs wastes slots: each buffer
   may present a different thread, and no transfer happens until they
   happen to agree (the leader/follower composition of DESIGN.md).
   When both operands of a join are buffered side by side, one shared
   arbiter can grant only threads with data in BOTH buffers (and, with
   ready-aware arbitration, whose consumer is ready), so every grant
   joins and transfers.

   The datapath instantiates two reduced or full MEB *storage* arrays
   by reusing the existing implementations with their arbitration
   driven from the shared grant: we build each MEB with Valid_only
   policy and gate its downstream ready per thread with the join
   transfer, which is exactly the baseline M-Join wiring — except the
   shared requests feed one arbiter, so the two grants are identical
   by construction. *)

module S = Hw.Signal

type t = {
  out : Mt_channel.t;
  grant : S.t;
}

let create ?(name = "ajoin") ?(policy = Policy.Ready_aware)
    ?(combine = fun b x y -> S.concat_msb b [ x; y ]) b
    (in_a : Mt_channel.t) (in_b : Mt_channel.t) =
  let n = Mt_channel.threads in_a in
  if Mt_channel.threads in_b <> n then invalid_arg "Aligned.create: thread count";
  (* Storage is the full-MEB datapath (one 2-slot EB per thread and
     side); only the arbitration differs: one shared arbiter over the
     per-thread AND of both stores' valids. *)
  let mk_store (input : Mt_channel.t) tag =
    Array.init n (fun i ->
        let ch =
          { Elastic.Channel.valid = input.Mt_channel.valids.(i);
            data = input.Mt_channel.data;
            ready = S.wire b 1 }
        in
        let eb =
          Elastic.Eb.create ~name:(Printf.sprintf "%s_%s%d" name tag i) b ch
        in
        S.assign input.Mt_channel.readys.(i) ch.Elastic.Channel.ready;
        eb)
  in
  let store_a = mk_store in_a "a" in
  let store_b = mk_store in_b "b" in
  let out_readys = Array.init n (fun _ -> S.wire b 1) in
  let req_bit i =
    let both =
      S.land_ b store_a.(i).Elastic.Eb.out.Elastic.Channel.valid
        store_b.(i).Elastic.Eb.out.Elastic.Channel.valid
    in
    match policy with
    | Policy.Valid_only -> both
    | Policy.Ready_aware -> S.land_ b both out_readys.(i)
  in
  let req = S.concat_msb b (List.rev (List.init n req_bit)) in
  let advance = S.wire b 1 in
  let rr = Arbiter.round_robin b ~advance req in
  S.assign advance rr.Arbiter.any_grant;
  let grant = S.set_name rr.Arbiter.grant (name ^ "_grant") in
  let out_valids = Array.init n (fun i -> S.bit b grant i) in
  Array.iteri
    (fun i (eb : Elastic.Eb.t) ->
      S.assign eb.Elastic.Eb.out.Elastic.Channel.ready
        (S.land_ b out_valids.(i) out_readys.(i)))
    store_a;
  Array.iteri
    (fun i (eb : Elastic.Eb.t) ->
      S.assign eb.Elastic.Eb.out.Elastic.Channel.ready
        (S.land_ b out_valids.(i) out_readys.(i)))
    store_b;
  let mux_store store =
    S.mux b rr.Arbiter.grant_index
      (List.init n (fun i -> store.(i).Elastic.Eb.out.Elastic.Channel.data))
  in
  let data = combine b (mux_store store_a) (mux_store store_b) in
  { out = { Mt_channel.valids = out_valids; readys = out_readys; data };
    grant }
