(** M-Merge (paper Fig. 7d): merge the two channels produced by an
    M-Branch.  Per thread the inputs are exclusive, but across threads
    both channels may present tokens in one cycle — only one can use
    the shared output bus, so the merge selects a path per cycle:
    [Priority_a] always prefers input A; [Fair] alternates while both
    compete. *)

module S := Hw.Signal

type fairness = Priority_a | Fair

val create :
  ?fairness:fairness ->
  S.builder -> Mt_channel.t -> Mt_channel.t -> Mt_channel.t
