(* MEB output arbitration policy (Section III and DESIGN.md).

   [Ready_aware] — grant only threads whose downstream ready is already
   high; every grant transfers, which matches the schedules of Fig. 5.
   The grant then depends combinationally on downstream ready, so at an
   M-Join exactly one of the joined producers may use it (the
   leader/follower rule) or a combinational cycle results — the
   elaborator rejects such compositions.

   [Valid_only] — grant among threads with buffered data regardless of
   downstream readiness.  Grants may fail to transfer (the token stays
   buffered), costing slots under contention, but the control is
   acyclic in any topology. *)

type t = Ready_aware | Valid_only

let to_string = function Ready_aware -> "ready-aware" | Valid_only -> "valid-only"

(* Thread-interleaving granularity (paper Section I, citing Ungerer et
   al.): fine-grained selection may change the granted thread every
   cycle; coarse-grained keeps the winner for up to a quantum of
   transfers. *)
type granularity = Fine | Coarse of int

let granularity_to_string = function
  | Fine -> "fine"
  | Coarse q -> Printf.sprintf "coarse(%d)" q
