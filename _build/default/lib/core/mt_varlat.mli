(** Variable-latency computation units on multithreaded elastic
    channels — the paper's model for shared functional units and
    memories ("instruction and data memory as well as the execution
    units are considered variable latency units"). *)

module S := Hw.Signal

type latency = Fixed of int | Random of { max_latency : int; seed : int }

type t = {
  out : Mt_channel.t;
  accept : S.t;  (** pulse: a token is accepted this cycle *)
  accept_thread : S.t;  (** binary thread index of the accepted token *)
  busy : S.t;
}

val create :
  ?name:string -> ?f:(S.builder -> S.t -> S.t) ->
  S.builder -> Mt_channel.t -> latency:latency -> t
(** Single-context unit: holds one token of whichever thread won the
    upstream arbitration; [f] is applied combinationally at acceptance
    (e.g. a memory read — gate write ports with {!field-accept}). *)

val per_thread :
  ?name:string -> ?f:(S.builder -> S.t -> S.t) ->
  S.builder -> Mt_channel.t -> latency:latency -> t
(** Per-thread-context unit: every thread owns a private slot, so
    threads overlap their latencies (the Fig. 1(c) latency-hiding
    configuration); finished threads compete for the output through a
    round-robin arbiter.  [accept]/[accept_thread] are not meaningful
    for this variant. *)
