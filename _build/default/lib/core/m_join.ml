(* M-Join (Fig. 7a): the handshake pairs of both inputs are gathered
   per thread and fed to one baseline join per thread.  Thread i fires
   when both inputs carry valid data for thread i; the two data buses
   are combined combinationally. *)

module S = Hw.Signal

let create ?(combine = fun b x y -> S.concat_msb b [ x; y ]) b
    (a : Mt_channel.t) (c : Mt_channel.t) =
  let n = Mt_channel.threads a in
  if Mt_channel.threads c <> n then invalid_arg "M_join: thread count mismatch";
  let out_readys = Array.init n (fun _ -> S.wire b 1) in
  let out_valids =
    Array.init n (fun i ->
        S.land_ b a.Mt_channel.valids.(i) c.Mt_channel.valids.(i))
  in
  Array.iteri
    (fun i r ->
      S.assign r (S.land_ b out_readys.(i) c.Mt_channel.valids.(i)))
    a.Mt_channel.readys;
  Array.iteri
    (fun i r ->
      S.assign r (S.land_ b out_readys.(i) a.Mt_channel.valids.(i)))
    c.Mt_channel.readys;
  { Mt_channel.valids = out_valids;
    readys = out_readys;
    data = combine b a.Mt_channel.data c.Mt_channel.data }
