(* M-Branch (Fig. 7c): steers the active thread's token to the
   [out_true] or [out_false] channel according to a condition flag
   computed from the data bus.  The asserted valid bit of the input
   channel identifies which thread the condition belongs to, so one
   baseline branch per thread suffices. *)

module S = Hw.Signal

type t = { out_true : Mt_channel.t; out_false : Mt_channel.t }

let create b (input : Mt_channel.t) ~cond =
  if S.width cond <> 1 then invalid_arg "M_branch.create: cond must be 1 bit";
  let n = Mt_channel.threads input in
  let ready_t = Array.init n (fun _ -> S.wire b 1) in
  let ready_f = Array.init n (fun _ -> S.wire b 1) in
  Array.iteri
    (fun i r -> S.assign r (S.mux2 b cond ready_t.(i) ready_f.(i)))
    input.Mt_channel.readys;
  { out_true =
      { Mt_channel.valids =
          Array.init n (fun i -> S.land_ b input.Mt_channel.valids.(i) cond);
        readys = ready_t;
        data = input.Mt_channel.data };
    out_false =
      { Mt_channel.valids =
          Array.init n (fun i ->
              S.land_ b input.Mt_channel.valids.(i) (S.lnot b cond));
        readys = ready_f;
        data = input.Mt_channel.data } }
