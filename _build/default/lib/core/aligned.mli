(** Aligned MEB pair for M-Join inputs.

    Joining two independently-arbitrated MEBs wastes cycles: each may
    present a different thread, and nothing transfers until the grants
    agree.  This unit buffers both operands (the full-MEB datapath: a
    2-slot EB per thread and side) under ONE shared arbiter whose
    requests are the per-thread AND of both stores' valids — every
    grant joins, so an aligned pair sustains one join per cycle.

    With {!Policy.Ready_aware} the request also includes downstream
    ready; being a single arbitration point, no combinational
    grant/ready cycle can form through this join. *)

module S := Hw.Signal

type t = {
  out : Mt_channel.t;  (** the joined channel *)
  grant : S.t;  (** shared one-hot grant (probe) *)
}

val create :
  ?name:string -> ?policy:Policy.t ->
  ?combine:(S.builder -> S.t -> S.t -> S.t) ->
  S.builder -> Mt_channel.t -> Mt_channel.t -> t
