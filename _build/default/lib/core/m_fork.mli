(** M-Fork (paper Fig. 7b): one eager fork per thread over the
    gathered per-thread handshakes; the data bus fans out unchanged.
    Keeps each thread's ready independent of its valid (safe under
    ready-aware producers). *)

module S := Hw.Signal

val eager :
  ?name:string -> S.builder -> Mt_channel.t -> n:int -> Mt_channel.t list
