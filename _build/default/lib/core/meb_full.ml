(* The full multithreaded elastic buffer (Fig. 4): one 2-slot EB per
   thread, an output arbiter and a data multiplexer.  Capacity is 2S
   slots for S threads — the expensive baseline the reduced MEB
   improves on. *)

module S = Hw.Signal

type t = {
  out : Mt_channel.t;
  occupancy : S.t; (* total items buffered, for probes *)
  grant : S.t; (* one-hot output grant, for probes *)
}

let create ?(name = "meb") ?(policy = Policy.Ready_aware)
    ?(granularity = Policy.Fine) b (input : Mt_channel.t) =
  let n = Mt_channel.threads input in
  let w = Mt_channel.width input in
  (* One private 2-slot EB per thread; each sees the shared data bus and
     its own valid. *)
  let ebs =
    Array.init n (fun i ->
        let ch =
          { Elastic.Channel.valid = input.Mt_channel.valids.(i);
            data = input.Mt_channel.data;
            ready = S.wire b 1 }
        in
        let eb = Elastic.Eb.create ~name:(Printf.sprintf "%s_t%d" name i) b ch in
        (* The EB assigned ch.ready; surface it as this thread's
           upstream ready. *)
        S.assign input.Mt_channel.readys.(i) ch.Elastic.Channel.ready;
        eb)
  in
  let out_readys = Array.init n (fun _ -> S.wire b 1) in
  let req_bit i =
    let v = ebs.(i).Elastic.Eb.out.Elastic.Channel.valid in
    match policy with
    | Policy.Valid_only -> v
    | Policy.Ready_aware -> S.land_ b v out_readys.(i)
  in
  let req = S.concat_msb b (List.rev (List.init n (fun i -> req_bit i))) in
  let advance = S.wire b 1 in
  let rr =
    match granularity with
    | Policy.Fine -> Arbiter.round_robin b ~advance req
    | Policy.Coarse quantum -> Arbiter.sticky_round_robin b ~advance ~quantum req
  in
  let grant = S.set_name rr.Arbiter.grant (name ^ "_grant") in
  let out_valids = Array.init n (fun i -> S.bit b grant i) in
  (* Dequeue an EB when its thread is granted and the consumer is
     ready. *)
  Array.iteri
    (fun i (eb : Elastic.Eb.t) ->
      S.assign eb.Elastic.Eb.out.Elastic.Channel.ready
        (S.land_ b out_valids.(i) out_readys.(i)))
    ebs;
  (* Rotate past the granted thread every cycle a grant exists (not
     only on transfer): under Valid_only a granted-but-stalled thread
     must not pin the pointer, or threads behind it would never be
     shown downstream (e.g. to a barrier counting arrivals).  Under
     Ready_aware every grant transfers, so this is equivalent to
     rotate-on-transfer. *)
  S.assign advance rr.Arbiter.any_grant;
  let data_out =
    S.mux b rr.Arbiter.grant_index
      (List.init n (fun i -> ebs.(i).Elastic.Eb.out.Elastic.Channel.data))
  in
  let occupancy =
    let ow = S.clog2 ((2 * n) + 1) in
    S.reduce b S.add
      (List.init n (fun i -> S.uresize b ebs.(i).Elastic.Eb.occupancy ow))
  in
  ignore w;
  { out = { Mt_channel.valids = out_valids; readys = out_readys; data = data_out };
    occupancy;
    grant }

(* A linear pipeline of [stages] full MEBs, applying [f] between
   consecutive stages when given. *)
let pipeline ?(name = "meb") ?policy ?granularity ?f b ~stages (input : Mt_channel.t) =
  let rec go i ch acc =
    if i >= stages then (ch, List.rev acc)
    else begin
      let ch = match f with None -> ch | Some f -> Mt_channel.map b ch ~f in
      let meb =
        create ~name:(Printf.sprintf "%s%d" name i) ?policy ?granularity b ch
      in
      go (i + 1) meb.out (meb :: acc)
    end
  in
  go 0 input []
