lib/core/m_join.mli: Hw Mt_channel
