lib/core/mt_varlat.ml: Arbiter Array Hw List Mt_channel Printf
