lib/core/meb.ml: Hw List Meb_full Meb_reduced Mt_channel Printf
