lib/core/barrier.ml: Array Hw Mt_channel Printf
