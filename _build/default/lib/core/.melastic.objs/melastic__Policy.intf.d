lib/core/policy.mli:
