lib/core/m_merge.ml: Array Bits Hw Mt_channel
