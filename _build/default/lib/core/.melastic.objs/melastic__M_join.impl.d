lib/core/m_join.ml: Array Hw Mt_channel
