lib/core/meb_reduced.ml: Arbiter Array Bits Hw List Mt_channel Policy Printf
