lib/core/m_fork.ml: Array Hw List Mt_channel Printf
