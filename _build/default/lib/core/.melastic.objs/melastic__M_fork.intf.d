lib/core/m_fork.mli: Hw Mt_channel
