lib/core/meb_reduced.mli: Hw Mt_channel Policy
