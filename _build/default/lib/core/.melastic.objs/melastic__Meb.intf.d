lib/core/meb.mli: Hw Mt_channel Policy
