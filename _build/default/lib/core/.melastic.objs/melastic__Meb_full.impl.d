lib/core/meb_full.ml: Arbiter Array Elastic Hw List Mt_channel Policy Printf
