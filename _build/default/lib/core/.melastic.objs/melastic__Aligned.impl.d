lib/core/aligned.ml: Arbiter Array Elastic Hw List Mt_channel Policy Printf
