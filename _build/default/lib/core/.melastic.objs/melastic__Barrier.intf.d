lib/core/barrier.mli: Hw Mt_channel
