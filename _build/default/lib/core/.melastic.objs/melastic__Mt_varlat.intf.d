lib/core/mt_varlat.mli: Hw Mt_channel
