lib/core/mt_channel.ml: Array Hw List
