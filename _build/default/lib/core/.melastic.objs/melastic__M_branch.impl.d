lib/core/m_branch.ml: Array Hw Mt_channel
