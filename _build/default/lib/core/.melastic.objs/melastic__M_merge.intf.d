lib/core/m_merge.mli: Hw Mt_channel
