lib/core/meb_full.mli: Hw Mt_channel Policy
