lib/core/aligned.mli: Hw Mt_channel Policy
