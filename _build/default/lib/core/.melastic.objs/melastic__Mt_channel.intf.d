lib/core/mt_channel.mli: Hw
