lib/core/m_branch.mli: Hw Mt_channel
