(** The full multithreaded elastic buffer (paper Fig. 4): one private
    2-slot EB per thread, an output arbiter and a data multiplexer —
    2S slots for S threads, the baseline the reduced MEB improves
    on. *)

module S := Hw.Signal

type t = {
  out : Mt_channel.t;
  occupancy : S.t;  (** total buffered items *)
  grant : S.t;  (** one-hot output grant (probe) *)
}

val create :
  ?name:string -> ?policy:Policy.t -> ?granularity:Policy.granularity ->
  S.builder -> Mt_channel.t -> t

val pipeline :
  ?name:string -> ?policy:Policy.t -> ?granularity:Policy.granularity ->
  ?f:(S.builder -> S.t -> S.t) ->
  S.builder -> stages:int -> Mt_channel.t -> Mt_channel.t * t list
(** A linear pipeline of [stages] MEBs, applying [f] to the payload
    between consecutive stages when given. *)
