lib/synth/dataflow.mli: Hw Melastic
