lib/synth/dataflow.ml: Array Buffer Hashtbl Hw List Melastic Option Printf
