(* Circuit-level arbiters over a request bit-vector, plus pure OCaml
   reference models used by the test suites.

   Grants are one-hot.  The round-robin arbiter keeps a pointer
   register: the search for a requester starts at the pointer and the
   pointer moves one past the granted index whenever [advance] is high
   (typically "the granted transfer actually happened"). *)

module S = Hw.Signal

(* One-hot fixed-priority grant, bit 0 = highest priority. *)
let fixed_priority b req =
  let w = S.width req in
  if w = 1 then req
  else begin
    (* blocked(i) = req(0) | ... | req(i-1), built as a running OR. *)
    let rec grants i blocked acc =
      if i >= w then List.rev acc
      else
        let r = S.bit b req i in
        let g = S.land_ b r (S.lnot b blocked) in
        grants (i + 1) (S.lor_ b blocked r) (g :: acc)
    in
    let gs = grants 1 (S.bit b req 0) [ S.bit b req 0 ] in
    S.concat_msb b (List.rev gs)
  end

(* Thermometer mask: bit i set iff i >= ptr (ptr given in binary). *)
let mask_ge b ~width ptr =
  let bits =
    List.init width (fun i ->
        S.lnot b (S.ult b (S.of_int b ~width:(S.width ptr) i) ptr))
  in
  S.concat_msb b (List.rev bits)

type round_robin = {
  grant : S.t; (* one-hot, all zero when no request *)
  grant_index : S.t; (* binary index of the granted requester *)
  any_grant : S.t;
  pointer : S.t; (* current priority pointer, for observability *)
}

let round_robin b ~advance req =
  let w = S.width req in
  if w = 1 then
    { grant = req; grant_index = S.gnd b; any_grant = req; pointer = S.gnd b }
  else begin
    let ptr_w = S.clog2 w in
    let ptr = S.wire b ptr_w in
    (* Two-pass priority: first among requests at or above the pointer,
       otherwise wrap to the plain fixed-priority grant. *)
    let masked = S.land_ b req (mask_ge b ~width:w ptr) in
    let grant_hi = fixed_priority b masked in
    let grant_lo = fixed_priority b req in
    let any_hi = S.any_bit_set b masked in
    let grant = S.mux2 b any_hi grant_hi grant_lo in
    let any_grant = S.any_bit_set b req in
    let grant_index = S.onehot_to_binary b grant in
    let grant_index = S.uresize b grant_index ptr_w in
    (* pointer <- grant_index + 1 (mod w) when an advance happens. *)
    let next =
      let inc = S.add b grant_index (S.of_int b ~width:ptr_w 1) in
      let wrapped =
        if w = 1 lsl ptr_w then inc
        else S.mux2 b (S.eq b grant_index (S.of_int b ~width:ptr_w (w - 1)))
               (S.zero b ptr_w) inc
      in
      wrapped
    in
    let enable = S.land_ b advance any_grant in
    let ptr_reg = S.reg b ~enable next in
    S.assign ptr ptr_reg;
    { grant; grant_index; any_grant; pointer = ptr_reg }
  end

(* Sticky (coarse-grained) round-robin: the grant stays with the
   current owner while it keeps requesting and its quantum has not
   expired; only then does the pointer move on.  This is the
   coarse-grained thread interleaving of Ungerer et al. that the
   paper contrasts with cycle-by-cycle (fine-grained) selection. *)
let sticky_round_robin b ~advance ~quantum req =
  if quantum < 1 then invalid_arg "Arbiter.sticky_round_robin: quantum >= 1";
  let w = S.width req in
  if w = 1 then
    { grant = req; grant_index = S.gnd b; any_grant = req; pointer = S.gnd b }
  else begin
    let ptr_w = S.clog2 w in
    let owner_valid = S.wire b 1 in
    let owner = S.wire b ptr_w in
    let q_w = max 1 (S.clog2 (quantum + 1)) in
    let credit = S.wire b q_w in
    (* Does the owner still request, with quantum left? *)
    let owner_req =
      S.any_bit_set b (S.land_ b req (S.binary_to_onehot b ~size:w owner))
    in
    let keep =
      S.land_ b owner_valid
        (S.land_ b owner_req (S.lnot b (S.eq_const b credit 0)))
    in
    (* Fall back to plain round-robin arbitration for a new owner. *)
    let rr_adv = S.wire b 1 in
    let rr = round_robin b ~advance:rr_adv req in
    let grant =
      S.mux2 b keep (S.binary_to_onehot b ~size:w owner) rr.grant
    in
    let grant_index = S.mux2 b keep owner rr.grant_index in
    let any_grant = S.mux2 b keep (S.vdd b) rr.any_grant in
    (* The base pointer only rotates when a new owner is adopted. *)
    S.assign rr_adv (S.land_ b advance (S.lnot b keep));
    let adopting = S.land_ b advance (S.land_ b (S.lnot b keep) rr.any_grant) in
    let owner_reg = S.reg b ~enable:adopting rr.grant_index in
    let ov_reg =
      S.reg_fb b ~width:1 (fun q -> S.mux2 b adopting (S.vdd b) q)
    in
    S.assign owner owner_reg;
    S.assign owner_valid ov_reg;
    let credit_next =
      S.mux2 b adopting
        (S.of_int b ~width:q_w (quantum - 1))
        (S.mux2 b (S.land_ b keep advance)
           (S.sub b credit (S.of_int b ~width:q_w 1))
           credit)
    in
    S.assign credit (S.reg b credit_next);
    { grant; grant_index; any_grant; pointer = rr.pointer }
  end

(* Pure reference models. *)
module Model = struct
  (* [fixed_priority reqs] returns the granted index, if any. *)
  let fixed_priority reqs =
    let n = Array.length reqs in
    let rec go i = if i >= n then None else if reqs.(i) then Some i else go (i + 1) in
    go 0

  type rr = { mutable ptr : int; n : int }

  let make_rr n = { ptr = 0; n }

  (* Returns granted index (if any); [advance] tells the model the
     transfer happened, moving the pointer past the grant. *)
  let rr_grant t reqs =
    let rec go k =
      if k >= t.n then None
      else
        let i = (t.ptr + k) mod t.n in
        if reqs.(i) then Some i else go (k + 1)
    in
    go 0

  let rr_advance t granted = t.ptr <- (granted + 1) mod t.n
end
