(** Circuit-level arbiters over request bit-vectors, plus pure
    reference models for the test suites.  Grants are one-hot; all-zero
    when nothing requests. *)

module S := Hw.Signal

val fixed_priority : S.builder -> S.t -> S.t
(** One-hot grant; bit 0 has the highest priority. *)

val mask_ge : S.builder -> width:int -> S.t -> S.t
(** Thermometer mask: output bit [i] is set iff [i >= ptr]. *)

type round_robin = {
  grant : S.t;  (** one-hot; all-zero when idle *)
  grant_index : S.t;  (** binary index of the granted requester *)
  any_grant : S.t;
  pointer : S.t;  (** the priority pointer register, for probes *)
}

val round_robin : S.builder -> advance:S.t -> S.t -> round_robin
(** Round-robin arbitration: the search starts at the pointer; when
    [advance] is high and something is granted, the pointer moves one
    past the granted index.  Drive [advance] with "the grant was
    consumed" (or with [any_grant] for rotate-on-grant). *)

val sticky_round_robin :
  S.builder -> advance:S.t -> quantum:int -> S.t -> round_robin
(** Coarse-grained variant: the grant stays with the current owner
    while it keeps requesting, for up to [quantum] granted cycles;
    then (or when the owner goes idle) the next requester is adopted
    round-robin.  [advance] gates owner adoption and credit spend. *)

(** Pure models mirrored by the circuits. *)
module Model : sig
  val fixed_priority : bool array -> int option

  type rr

  val make_rr : int -> rr
  val rr_grant : rr -> bool array -> int option
  val rr_advance : rr -> int -> unit
end
