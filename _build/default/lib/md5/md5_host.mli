(** Host-side driver for the MD5 circuit: arbitrary-length messages
    via digest chaining.

    The barrier synchronizes all threads each episode, so the host
    proceeds in aligned rounds of max-block-count batches; threads
    with shorter messages contribute dummy blocks whose digests are
    discarded. *)

val hash_messages : ?limit:int -> Hw.Sim.t -> string list -> string list
(** [hash_messages sim messages] — thread [i] hashes [List.nth
    messages i]; the simulator must come from [Md5_circuit.circuit
    ~threads:(List.length messages)].  Returns lowercase hex digests.
    Raises [Failure] beyond [limit] simulated cycles. *)
