(* Host-side driver for the MD5 circuit: hashes arbitrary-length
   messages (one per thread) by feeding padded blocks with digest
   chaining.

   The barrier synchronizes ALL participating threads every episode,
   so the host must keep the batches aligned: it proceeds in explicit
   rounds of max-block-count batches, where a thread whose message has
   fewer blocks contributes dummy blocks (standard IV, digest
   discarded).  Each round is fully drained before the next is
   submitted — exactly the discipline a hardware host controller for
   the paper's design needs. *)

let dummy_input () =
  Md5_circuit.input_bits
    ~block:(Bits.zero Md5_circuit.block_width)
    ~iv:(Md5_ref.state_to_bits Md5_ref.iv)

(* Hash [messages] (thread i gets message i) on a simulator built from
   [Md5_circuit.circuit ~threads:(List.length messages)]; returns the
   hex digests.  Raises [Failure] if the circuit does not finish
   within [limit] cycles. *)
let hash_messages ?(limit = 200_000) sim messages =
  let threads = List.length messages in
  let d =
    Workload.Mt_driver.create sim ~src:"msg" ~snk:"digest" ~threads
      ~width:Md5_circuit.input_width
  in
  let blocks = Array.of_list (List.map Md5_ref.padded_blocks messages) in
  let chain =
    Array.init threads (fun _ -> Md5_ref.state_to_bits Md5_ref.iv)
  in
  let rounds = Array.fold_left (fun acc b -> max acc (List.length b)) 0 blocks in
  let budget = ref limit in
  for round = 0 to rounds - 1 do
    (* Submit one batch: every thread sends a block (real or dummy). *)
    let real = Array.make threads false in
    for t = 0 to threads - 1 do
      match List.nth_opt blocks.(t) round with
      | Some block ->
        real.(t) <- true;
        Workload.Mt_driver.push d ~thread:t
          (Md5_circuit.input_bits ~block:(Md5_ref.block_to_bits block)
             ~iv:chain.(t))
      | None -> Workload.Mt_driver.push d ~thread:t (dummy_input ())
    done;
    (* Drain the whole batch before the next round. *)
    let target =
      Array.init threads (fun t ->
          List.length (Workload.Mt_driver.output_sequence d ~thread:t) + 1)
    in
    let batch_done () =
      Array.for_all
        (fun t ->
          List.length (Workload.Mt_driver.output_sequence d ~thread:t)
          >= target.(t))
        (Array.init threads Fun.id)
    in
    while (not (batch_done ())) && !budget > 0 do
      decr budget;
      Workload.Mt_driver.step d
    done;
    if not (batch_done ()) then
      failwith "Md5_host.hash_messages: cycle limit exceeded";
    for t = 0 to threads - 1 do
      if real.(t) then begin
        let outs = Workload.Mt_driver.output_sequence d ~thread:t in
        chain.(t) <- List.nth outs (List.length outs - 1)
      end
    done
  done;
  Array.to_list
    (Array.map (fun c -> Md5_ref.to_hex (Md5_ref.state_of_bits c)) chain)
