(* Reference MD5 (RFC 1321), pure OCaml over 32-bit words kept in
   OCaml ints.  Used as the golden model for the circuit and for the
   test vectors. *)

let mask32 = 0xffffffff

(* T[i] = floor(|sin(i+1)| * 2^32), computed as the RFC defines it. *)
let t_table =
  Array.init 64 (fun i ->
      Int64.to_int (Int64.of_float (Float.abs (sin (float_of_int (i + 1))) *. 4294967296.0))
      land mask32)

let s_table =
  [| 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
     5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20;
     4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
     6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21 |]

(* Message word index for step [k]. *)
let g_index k =
  let i = k mod 16 in
  match k / 16 with
  | 0 -> i
  | 1 -> ((5 * i) + 1) mod 16
  | 2 -> ((3 * i) + 5) mod 16
  | _ -> 7 * i mod 16

let rotl32 x s = ((x lsl s) lor (x lsr (32 - s))) land mask32

let f_round r b c d =
  match r with
  | 0 -> b land c lor (lnot b land d) land mask32
  | 1 -> b land d lor (c land lnot d) land mask32
  | 2 -> b lxor c lxor d
  | _ -> c lxor (b lor (lnot d land mask32))

let iv = (0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476)

(* One MD5 step: the datapath replicated 16x per cycle in the circuit. *)
let step ~k (a, b, c, d) m =
  let r = k / 16 in
  let f = f_round r b c d in
  let sum = (a + f + m.(g_index k) + t_table.(k)) land mask32 in
  let nb = (b + rotl32 sum s_table.(k)) land mask32 in
  (d, nb, b, c)

(* Process one 16-word block against a chaining value. *)
let process_block (a0, b0, c0, d0) m =
  let rec go k st = if k >= 64 then st else go (k + 1) (step ~k st m) in
  let a, b, c, d = go 0 (a0, b0, c0, d0) in
  ((a0 + a) land mask32, (b0 + b) land mask32, (c0 + c) land mask32,
   (d0 + d) land mask32)

(* RFC 1321 padding: 0x80, zeros, 64-bit little-endian bit length. *)
let pad_message msg =
  let len = String.length msg in
  let bit_len = len * 8 in
  let total = ((len + 8) / 64 * 64) + 64 in
  let buf = Bytes.make total '\000' in
  Bytes.blit_string msg 0 buf 0 len;
  Bytes.set buf len '\x80';
  for i = 0 to 7 do
    Bytes.set buf (total - 8 + i) (Char.chr ((bit_len lsr (8 * i)) land 0xff))
  done;
  Bytes.to_string buf

let words_of_block block offset =
  Array.init 16 (fun i ->
      let base = offset + (i * 4) in
      Char.code block.[base]
      lor (Char.code block.[base + 1] lsl 8)
      lor (Char.code block.[base + 2] lsl 16)
      lor (Char.code block.[base + 3] lsl 24))

(* Digest of an arbitrary string, as the four state words. *)
let digest_words msg =
  let padded = pad_message msg in
  let blocks = String.length padded / 64 in
  let rec go i st =
    if i >= blocks then st else go (i + 1) (process_block st (words_of_block padded (i * 64)))
  in
  go 0 iv

(* Standard lowercase-hex rendering (little-endian bytes per word). *)
let to_hex (a, b, c, d) =
  let word w =
    String.concat ""
      (List.init 4 (fun i -> Printf.sprintf "%02x" ((w lsr (8 * i)) land 0xff)))
  in
  word a ^ word b ^ word c ^ word d

let digest msg = to_hex (digest_words msg)

(* All padded 512-bit blocks of an arbitrary message, as word arrays. *)
let padded_blocks msg =
  let padded = pad_message msg in
  List.init (String.length padded / 64) (fun i -> words_of_block padded (i * 64))

(* Single-block helpers for the circuit, which processes pre-padded
   512-bit blocks (messages of at most 55 bytes). *)
let single_block_words msg =
  if String.length msg > 55 then invalid_arg "Md5_ref.single_block_words: too long";
  words_of_block (pad_message msg) 0

let block_to_bits words =
  Bits.concat (List.rev (Array.to_list (Array.map (fun w -> Bits.of_int ~width:32 w) words)))

let state_to_bits (a, b, c, d) =
  Bits.concat [ Bits.of_int ~width:32 d; Bits.of_int ~width:32 c;
                Bits.of_int ~width:32 b; Bits.of_int ~width:32 a ]

let state_of_bits bits =
  ( Bits.to_int (Bits.select bits ~hi:31 ~lo:0),
    Bits.to_int (Bits.select bits ~hi:63 ~lo:32),
    Bits.to_int (Bits.select bits ~hi:95 ~lo:64),
    Bits.to_int (Bits.select bits ~hi:127 ~lo:96) )
