lib/md5/md5_host.ml: Array Bits Fun List Md5_circuit Md5_ref Workload
