lib/md5/md5_circuit.ml: Array Bits Hw List Md5_ref Melastic Printf
