lib/md5/md5_host.mli: Hw
