lib/md5/md5_circuit.mli: Bits Hw Melastic
