lib/md5/md5_ref.ml: Array Bits Bytes Char Float Int64 List Printf String
