lib/md5/md5_ref.mli: Bits
