(** Reference MD5 (RFC 1321) in pure OCaml over 32-bit words: the
    golden model for the circuit and the source of the step constants
    the circuit's datapath instantiates. *)

val mask32 : int

val t_table : int array
(** T[i] = floor(|sin(i+1)| * 2^32), computed as the RFC defines. *)

val s_table : int array
(** Per-step rotate amounts. *)

val g_index : int -> int
(** Message-word index used by step [k] (0..63). *)

val rotl32 : int -> int -> int
val f_round : int -> int -> int -> int -> int
(** [f_round r b c d] — the round function F/G/H/I for round [r]. *)

val iv : int * int * int * int
(** The standard chaining-value initialisation (A0, B0, C0, D0). *)

val step : k:int -> int * int * int * int -> int array -> int * int * int * int
(** One MD5 step on state (a,b,c,d) with message words [m]. *)

val process_block : int * int * int * int -> int array -> int * int * int * int

val pad_message : string -> string
(** RFC 1321 padding: 0x80, zeros, 64-bit little-endian bit length. *)

val words_of_block : string -> int -> int array

val digest_words : string -> int * int * int * int
(** Digest of an arbitrary string (multi-block). *)

val to_hex : int * int * int * int -> string
(** Standard lowercase-hex digest rendering. *)

val digest : string -> string

val padded_blocks : string -> int array list
(** All padded blocks of an arbitrary message, first block first. *)

(** {1 Single-block helpers for the circuit} *)

val single_block_words : string -> int array
(** Padded block of a message of at most 55 bytes. *)

val block_to_bits : int array -> Bits.t
(** 16 words as a 512-bit bus, word 0 in the least-significant bits. *)

val state_to_bits : int * int * int * int -> Bits.t
val state_of_bits : Bits.t -> int * int * int * int
