(* FPGA technology mapping model.

   The target is an Altera-Cyclone-class device: one logic element (LE)
   = one 4-input LUT plus one flip-flop.  Mapping rules per netlist
   node (width [w]):

   - wiring (const/input/wire/concat/select): free
   - [Not]: free — inverters fold into downstream LUT masks
   - 2-input bitwise gate: [w] LUTs
   - add/sub: [w] LEs in carry-chain mode
   - equality: a balanced reduction of [2w] inputs, ceil((2w-1)/3) LUTs
   - unsigned/signed compare: carry-chain comparator, [w] LUTs
   - k-ary mux: a tree of (k-1) 2:1 muxes per bit, each one LUT
   - multiplier: DSP block (counted separately, as the paper excludes
     DSPs from Table I)
   - register: [w] FFs; an FF packs into the LE of the LUT driving it
     when that LUT output has no other fanout
   - memory read: block RAM (counted separately, also excluded) *)

type cost = {
  luts : int;
  ffs : int;
  packed_ffs : int; (* FFs absorbed into the LE of their driving LUT *)
  dsps : int;
  brams : int;
}

let zero_cost = { luts = 0; ffs = 0; packed_ffs = 0; dsps = 0; brams = 0 }

let add_cost a b =
  { luts = a.luts + b.luts;
    ffs = a.ffs + b.ffs;
    packed_ffs = a.packed_ffs + b.packed_ffs;
    dsps = a.dsps + b.dsps;
    brams = a.brams + b.brams }

(* LEs consumed: every LUT needs an LE; an unpacked FF needs its own. *)
let les c = c.luts + (c.ffs - c.packed_ffs)

let lut_tree_size inputs = if inputs <= 1 then 0 else (inputs - 1 + 2) / 3

(* Does this node produce its result in LUTs (so a downstream FF can
   pack with it)? *)
let produces_lut (s : Hw.Signal.t) =
  match s.Hw.Signal.op with
  | Hw.Signal.Binop (Hw.Signal.Mul, _, _) -> false
  | Hw.Signal.Binop _ | Hw.Signal.Mux _ -> true
  | Hw.Signal.Const _ | Hw.Signal.Input _ | Hw.Signal.Wire _ | Hw.Signal.Not _
  | Hw.Signal.Concat _ | Hw.Signal.Select _ | Hw.Signal.Reg _
  | Hw.Signal.Mem_read _ -> false

(* Follow wiring nodes to the signal that actually computes a value. *)
let rec resolve (s : Hw.Signal.t) =
  match s.Hw.Signal.op with
  | Hw.Signal.Wire { driver = Some d } -> resolve d
  | Hw.Signal.Not x -> resolve x (* inversion folds away *)
  | _ -> s

let node_cost ~fanout (s : Hw.Signal.t) =
  let w = s.Hw.Signal.width in
  match s.Hw.Signal.op with
  | Hw.Signal.Const _ | Hw.Signal.Input _ | Hw.Signal.Wire _ | Hw.Signal.Not _
  | Hw.Signal.Concat _ | Hw.Signal.Select _ -> zero_cost
  | Hw.Signal.Binop (op, x, _) ->
    (match op with
     | Hw.Signal.And | Hw.Signal.Or | Hw.Signal.Xor -> { zero_cost with luts = w }
     | Hw.Signal.Add | Hw.Signal.Sub -> { zero_cost with luts = w }
     | Hw.Signal.Eq -> { zero_cost with luts = lut_tree_size (2 * x.Hw.Signal.width) }
     | Hw.Signal.Ult | Hw.Signal.Slt -> { zero_cost with luts = x.Hw.Signal.width }
     | Hw.Signal.Mul -> { zero_cost with dsps = 1 })
  | Hw.Signal.Mux (sel, cases) ->
    let k = Array.length cases in
    let all_const =
      Array.for_all
        (fun (c : Hw.Signal.t) ->
          match (resolve c).Hw.Signal.op with Hw.Signal.Const _ -> true | _ -> false)
        cases
    in
    if all_const then
      (* A mux of constants is just a function of the selector bits:
         one LUT per output bit while the selector fits a 4-LUT. *)
      { zero_cost with luts = w * max 1 ((sel.Hw.Signal.width + 3) / 4) }
    else
      (* Altera-class LEs implement wide muxes at roughly two LEs per
         4:1 stage and bit (cascade-chain packing): 2(k-1)/3 LUTs per
         bit rather than a naive k-1 tree of 2:1s. *)
      { zero_cost with luts = (((2 * (k - 1)) + 2) / 3) * w }
  | Hw.Signal.Reg { d; _ } ->
    let driver = resolve d in
    let packs = produces_lut driver && fanout driver.Hw.Signal.uid = 1 in
    { zero_cost with ffs = w; packed_ffs = (if packs then w else 0) }
  | Hw.Signal.Mem_read _ -> { zero_cost with brams = 1 }

let fanout_table (c : Hw.Circuit.t) =
  let fanout = Hashtbl.create 1024 in
  let bump (s : Hw.Signal.t) =
    let s = resolve s in
    let u = s.Hw.Signal.uid in
    Hashtbl.replace fanout u (1 + Option.value ~default:0 (Hashtbl.find_opt fanout u))
  in
  Hw.Circuit.iter_nodes c (fun s ->
      (match s.Hw.Signal.op with
       | Hw.Signal.Const _ | Hw.Signal.Input _ -> ()
       (* Wires and inverters are transparent (resolve folds through
          them): their consumers already bump the resolved driver, so
          bumping here would double-count and defeat FF packing. *)
       | Hw.Signal.Wire _ | Hw.Signal.Not _ -> ()
       | Hw.Signal.Binop (_, x, y) -> bump x; bump y
       | Hw.Signal.Mux (sel, cases) -> bump sel; Array.iter bump cases
       | Hw.Signal.Concat parts -> List.iter bump parts
       | Hw.Signal.Select { arg; _ } -> bump arg
       | Hw.Signal.Reg { d; enable; clear; _ } ->
         bump d;
         Option.iter bump enable;
         Option.iter bump clear
       | Hw.Signal.Mem_read { addr; _ } -> bump addr);
      ());
  List.iter
    (fun (m : Hw.Signal.memory) ->
      List.iter
        (fun (p : Hw.Signal.write_port) ->
          bump p.Hw.Signal.we; bump p.Hw.Signal.waddr; bump p.Hw.Signal.wdata)
        m.Hw.Signal.write_ports)
    c.Hw.Circuit.memories;
  (* Circuit outputs are sinks too: a LUT that also drives an output
     port cannot be absorbed into a register's LE. *)
  List.iter (fun (_, s) -> bump s) c.Hw.Circuit.outputs;
  fun uid -> Option.value ~default:0 (Hashtbl.find_opt fanout uid)

let circuit_cost (c : Hw.Circuit.t) =
  let fanout = fanout_table c in
  let total = ref zero_cost in
  Hw.Circuit.iter_nodes c (fun s -> total := add_cost !total (node_cost ~fanout s));
  !total
