(** Static timing analysis over the word-level netlist.

    Longest register/input-to-register path (plus sequencing overhead),
    inflated by an area-dependent routing factor — average wire length
    grows with the square root of placed area, which is why the
    paper's smaller reduced-MEB designs come out marginally faster.

    [default_params] is calibrated so the two Table I designs land in
    the paper's Fmax range (see EXPERIMENTS.md); relative comparisons
    do not depend on the calibration. *)

type params = {
  t_lut : float;  (** one LUT level incl. local interconnect, ns *)
  t_carry : float;  (** per-bit carry propagation, ns *)
  t_clk_q : float;
  t_setup : float;
  t_mem : float;  (** asynchronous memory read, ns *)
  t_dsp : float;
  route_alpha : float;  (** routing inflation per sqrt(LE) *)
}

val default_params : params

val mux_levels : int -> int
val node_delay : params -> Hw.Signal.t -> float

type result = {
  critical_path_ns : float;
  fmax_mhz : float;
  route_factor : float;
  critical_nodes : string list;  (** worst path, endpoint first *)
}

val analyze : ?params:params -> Hw.Circuit.t -> result
