lib/fpga/timing.ml: Array Hashtbl Hw List Option Tech
