lib/fpga/report.mli: Format Hw Timing
