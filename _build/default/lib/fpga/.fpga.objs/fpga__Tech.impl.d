lib/fpga/tech.ml: Array Hashtbl Hw List Option
