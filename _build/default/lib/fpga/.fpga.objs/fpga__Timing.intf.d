lib/fpga/timing.mli: Hw
