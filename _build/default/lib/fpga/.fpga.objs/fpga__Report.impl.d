lib/fpga/report.ml: Format Hw List Tech Timing
