lib/fpga/tech.mli: Hw
