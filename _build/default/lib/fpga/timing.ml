(* Static timing analysis over the word-level netlist.

   Each node gets a propagation delay (ns); arrival times are the
   longest combinational paths from state elements / inputs.  The
   clock period is the worst register-to-register (or input-to-register
   / register-to-output) path plus sequencing overhead, inflated by an
   area-dependent routing factor: bigger designs route worse, which is
   how the paper's reduced-MEB designs end up marginally faster. *)

type params = {
  t_lut : float; (* one LUT level, incl. local interconnect *)
  t_carry : float; (* per-bit carry propagation *)
  t_clk_q : float;
  t_setup : float;
  t_mem : float; (* async memory read *)
  t_dsp : float;
  route_alpha : float; (* routing inflation per log2(LE) *)
}

(* Calibrated so the two Table I designs land in the paper's Fmax
   range (see EXPERIMENTS.md); the full-vs-reduced comparisons do not
   depend on the calibration. *)
let default_params =
  { t_lut = 0.22; t_carry = 0.018; t_clk_q = 0.10; t_setup = 0.06; t_mem = 0.9;
    t_dsp = 1.5; route_alpha = 0.0012 }

let mux_levels k =
  (* Depth of a balanced tree of 2:1 muxes with [k] leaves. *)
  let rec go k acc = if k <= 1 then acc else go ((k + 1) / 2) (acc + 1) in
  go k 0

let node_delay p (s : Hw.Signal.t) =
  match s.Hw.Signal.op with
  | Hw.Signal.Const _ | Hw.Signal.Input _ | Hw.Signal.Wire _ | Hw.Signal.Not _
  | Hw.Signal.Concat _ | Hw.Signal.Select _ -> 0.0
  | Hw.Signal.Binop (op, x, _) ->
    (match op with
     | Hw.Signal.And | Hw.Signal.Or | Hw.Signal.Xor -> p.t_lut
     | Hw.Signal.Add | Hw.Signal.Sub | Hw.Signal.Ult | Hw.Signal.Slt ->
       p.t_lut +. (p.t_carry *. float_of_int x.Hw.Signal.width)
     | Hw.Signal.Eq ->
       (* Balanced LUT reduction of 2w inputs: log base 3 levels. *)
       let inputs = 2 * x.Hw.Signal.width in
       let rec levels n acc = if n <= 1 then acc else levels ((n + 2) / 3) (acc + 1) in
       p.t_lut *. float_of_int (levels inputs 0)
     | Hw.Signal.Mul -> p.t_dsp)
  | Hw.Signal.Mux (_, cases) -> p.t_lut *. float_of_int (mux_levels (Array.length cases))
  | Hw.Signal.Reg _ -> 0.0 (* handled as a path endpoint/startpoint *)
  | Hw.Signal.Mem_read _ -> p.t_mem

type result = {
  critical_path_ns : float;
  fmax_mhz : float;
  route_factor : float;
  critical_nodes : string list; (* description of the worst path, endpoint first *)
}

let analyze ?(params = default_params) (c : Hw.Circuit.t) =
  (* Longest arrival time at each node output. *)
  let arrival = Hashtbl.create 1024 in
  let pred = Hashtbl.create 1024 in
  let get (s : Hw.Signal.t) = Option.value ~default:0.0 (Hashtbl.find_opt arrival s.Hw.Signal.uid) in
  Hw.Circuit.iter_nodes c (fun s ->
      let start, deps =
        match s.Hw.Signal.op with
        | Hw.Signal.Reg _ -> params.t_clk_q, []
        | Hw.Signal.Const _ | Hw.Signal.Input _ -> 0.0, []
        | _ -> 0.0, Hw.Circuit.comb_deps s
      in
      let worst, worst_dep =
        List.fold_left
          (fun (w, wd) d -> let a = get d in if a > w then (a, Some d) else (w, wd))
          (start, None) deps
      in
      Hashtbl.replace arrival s.Hw.Signal.uid (worst +. node_delay params s);
      match worst_dep with
      | Some d -> Hashtbl.replace pred s.Hw.Signal.uid d
      | None -> ());
  (* Worst path ends at a register data/enable/clear pin (+ setup) or at
     a memory write port. *)
  let worst = ref 0.0 and worst_end = ref None in
  let consider (s : Hw.Signal.t) =
    let a = get s +. params.t_setup in
    if a > !worst then begin worst := a; worst_end := Some s end
  in
  Hw.Circuit.iter_nodes c (fun s ->
      match s.Hw.Signal.op with
      | Hw.Signal.Reg { d; enable; clear; _ } ->
        consider d;
        Option.iter consider enable;
        Option.iter consider clear
      | _ -> ());
  List.iter
    (fun (m : Hw.Signal.memory) ->
      List.iter
        (fun (p : Hw.Signal.write_port) ->
          consider p.Hw.Signal.we; consider p.Hw.Signal.waddr; consider p.Hw.Signal.wdata)
        m.Hw.Signal.write_ports)
    c.Hw.Circuit.memories;
  let les = Tech.les (Tech.circuit_cost c) in
  (* Average wire length grows with the square root of placed area:
     bigger designs route slower, which is why the paper's reduced-MEB
     designs come out marginally faster. *)
  let route_factor =
    1.0 +. (params.route_alpha *. sqrt (float_of_int (max 1 les)))
  in
  let critical = !worst *. route_factor in
  let critical = max critical 0.001 in
  let path =
    let rec walk acc (s : Hw.Signal.t) =
      let acc = Hw.Circuit.describe s :: acc in
      match Hashtbl.find_opt pred s.Hw.Signal.uid with
      | Some d -> walk acc d
      | None -> acc
    in
    match !worst_end with Some s -> List.rev (walk [] s) | None -> []
  in
  { critical_path_ns = critical;
    fmax_mhz = 1000.0 /. critical;
    route_factor;
    critical_nodes = path }
