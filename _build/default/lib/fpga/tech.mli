(** FPGA technology-mapping model: Altera-Cyclone-class logic elements
    (one 4-input LUT + one flip-flop each).

    Mapping rules (width [w]): wiring and inverters are free; 2-input
    gates and add/sub/compare cost [w] LUTs (carry chains); equality is
    a balanced LUT reduction; a k-ary mux costs 2(k-1)/3 LUTs per bit
    (one LUT per bit if every case is a constant); registers cost [w]
    FFs, and an FF packs for free into the LE of the LUT driving it
    when that LUT has no other fanout.  Multipliers map to DSP blocks
    and memories to block RAMs, counted separately and excluded from
    the LE totals exactly as the paper's Table I excludes them. *)

type cost = {
  luts : int;
  ffs : int;
  packed_ffs : int;  (** FFs absorbed into their driving LUT's LE *)
  dsps : int;
  brams : int;
}

val zero_cost : cost
val add_cost : cost -> cost -> cost

val les : cost -> int
(** Logic elements consumed: [luts + (ffs - packed_ffs)]. *)

val lut_tree_size : int -> int
(** 4-LUTs needed to reduce [n] inputs with 3-input steps. *)

val resolve : Hw.Signal.t -> Hw.Signal.t
(** Follow wires and inverter folds to the computing node. *)

val produces_lut : Hw.Signal.t -> bool

val node_cost : fanout:(int -> int) -> Hw.Signal.t -> cost
(** Cost of one node given a fanout oracle (uid -> sink count). *)

val fanout_table : Hw.Circuit.t -> int -> int
val circuit_cost : Hw.Circuit.t -> cost
