(* Implementation reports in the shape of the paper's Table I. *)

type row = {
  label : string;
  les : int;
  luts : int;
  ffs : int;
  brams : int;
  dsps : int;
  fmax_mhz : float;
  critical_path_ns : float;
}

let of_circuit ?params ~label (c : Hw.Circuit.t) =
  let cost = Tech.circuit_cost c in
  let timing = Timing.analyze ?params c in
  { label;
    les = Tech.les cost;
    luts = cost.Tech.luts;
    ffs = cost.Tech.ffs;
    brams = cost.Tech.brams;
    dsps = cost.Tech.dsps;
    fmax_mhz = timing.Timing.fmax_mhz;
    critical_path_ns = timing.Timing.critical_path_ns }

let pp_table fmt rows =
  Format.fprintf fmt "%-28s %8s %8s %8s %6s %5s %10s %9s@."
    "design" "LEs" "LUTs" "FFs" "BRAM" "DSP" "Fmax(MHz)" "Tcrit(ns)";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-28s %8d %8d %8d %6d %5d %10.1f %9.2f@."
        r.label r.les r.luts r.ffs r.brams r.dsps r.fmax_mhz r.critical_path_ns)
    rows

let to_string rows = Format.asprintf "%a" pp_table rows

(* Percentage saving of [reduced] relative to [full], in LEs. *)
let area_saving ~full ~reduced =
  100.0 *. (1.0 -. (float_of_int reduced.les /. float_of_int full.les))
