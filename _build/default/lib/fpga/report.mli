(** Implementation reports in the shape of the paper's Table I. *)

type row = {
  label : string;
  les : int;
  luts : int;
  ffs : int;
  brams : int;
  dsps : int;
  fmax_mhz : float;
  critical_path_ns : float;
}

val of_circuit : ?params:Timing.params -> label:string -> Hw.Circuit.t -> row
val pp_table : Format.formatter -> row list -> unit
val to_string : row list -> string

val area_saving : full:row -> reduced:row -> float
(** Percentage LE saving of [reduced] relative to [full]. *)
