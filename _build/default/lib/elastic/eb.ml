(* The baseline 2-slot elastic buffer (EB) of Section II.

   One-cycle forward and backward handshake latency requires a minimum
   capacity of two items [Carloni et al.]; the buffer is a 3-state FSM
   (EMPTY / HALF / FULL) over a main and an auxiliary register:

     EMPTY --write--> HALF --write--> FULL --read--> HALF --read--> EMPTY

   [valid] (downstream) and [ready] (upstream) depend only on the state
   register, so chains of EBs have no combinational handshake paths --
   the elasticization property the paper relies on. *)

module S = Hw.Signal

let empty = 0
let half = 1
let full = 2

type t = {
  out : Channel.t;
  state : S.t; (* 2-bit state, for probes and occupancy counters *)
  occupancy : S.t; (* 0, 1 or 2 *)
}

let create ?(name = "eb") b (input : Channel.t) =
  let _w = Channel.width input in
  let state = S.wire b 2 in
  let in_ready = S.lnot b (S.eq_const b state full) in
  let out_valid = S.lnot b (S.eq_const b state empty) in
  let out_ready = S.wire b 1 in
  S.assign input.Channel.ready in_ready;
  let wr = S.land_ b input.Channel.valid in_ready in
  let rd = S.land_ b out_valid out_ready in
  (* Next-state logic. *)
  let is s = S.eq_const b state s in
  let next =
    S.mux b state
      [ (* EMPTY *) S.mux2 b wr (S.of_int b ~width:2 half) (S.of_int b ~width:2 empty);
        (* HALF *)
        S.mux b (S.concat_msb b [ wr; rd ])
          [ S.of_int b ~width:2 half; (* no wr, no rd *)
            S.of_int b ~width:2 empty; (* rd only *)
            S.of_int b ~width:2 full; (* wr only *)
            S.of_int b ~width:2 half (* wr and rd *) ];
        (* FULL *) S.mux2 b rd (S.of_int b ~width:2 half) (S.of_int b ~width:2 full) ]
  in
  let state_reg = S.reg b next in
  S.assign state state_reg;
  ignore (S.set_name state_reg (name ^ "_state"));
  (* Datapath: main holds the head; aux holds the second item. *)
  let aux_en = S.land_ b (is half) (S.land_ b wr (S.lnot b rd)) in
  let aux = S.reg b ~enable:aux_en input.Channel.data in
  let refill = S.land_ b (is full) rd in
  let main_en =
    S.lor_ b refill
      (S.lor_ b
         (S.land_ b (is empty) wr)
         (S.land_ b (is half) (S.land_ b wr rd)))
  in
  let main = S.reg b ~enable:main_en (S.mux2 b refill aux input.Channel.data) in
  ignore (S.set_name main (name ^ "_main"));
  let occupancy =
    S.mux b state
      [ S.of_int b ~width:2 0; S.of_int b ~width:2 1; S.of_int b ~width:2 2;
        S.of_int b ~width:2 0 ]
  in
  { out = { Channel.valid = out_valid; data = main; ready = out_ready };
    state = state_reg;
    occupancy }

(* A chain of [n] EBs, optionally applying a combinational function
   between consecutive stages. *)
let chain ?(name = "eb") b ~n input =
  let rec go i ch acc =
    if i >= n then (ch, List.rev acc)
    else
      let eb = create ~name:(Printf.sprintf "%s%d" name i) b ch in
      go (i + 1) eb.out (eb :: acc)
  in
  go 0 input []
