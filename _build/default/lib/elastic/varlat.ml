(* A variable-latency elastic computation unit.

   The unit holds at most one token.  When a token is accepted, a
   latency is sampled — either from an in-circuit LFSR (bounded by
   [max_latency]) or from a fixed value — and the output becomes valid
   once the down-counter expires.  This models the paper's
   variable-latency memories and functional units: the handshake hides
   the latency from the rest of the circuit. *)

module S = Hw.Signal

type latency_source =
  | Fixed of int
  | Random of { max_latency : int; seed : int }

let create ?(name = "varlat") ?(f = fun _b d -> d) b (input : Channel.t) ~latency =
  let cnt_w, sample =
    match latency with
    | Fixed n ->
      if n < 0 then invalid_arg "Varlat: negative latency";
      let cw = max 1 (S.clog2 (n + 1)) in
      (cw, fun () -> S.of_int b ~width:cw n)
    | Random { max_latency; seed } ->
      if max_latency < 1 then invalid_arg "Varlat: max_latency must be >= 1";
      let cw = max 3 (S.clog2 (max_latency + 1)) in
      ( cw,
        fun () ->
          (* LFSR value folded into [0, max_latency]: a cheap mod via
             comparison against the bound (values above it wrap by
             subtracting). *)
          let lf = Hw.Lfsr.create b ~width:(max cw 3) ~seed () in
          let lf = S.uresize b lf cw in
          let bound = S.of_int b ~width:cw (max_latency + 1) in
          let wrapped = S.sub b lf bound in
          S.mux2 b (S.ult b lf bound) lf wrapped )
  in
  let occupied = S.wire b 1 in
  let counter = S.wire b cnt_w in
  let out_ready = S.wire b 1 in
  let done_ = S.eq_const b counter 0 in
  let out_valid = S.land_ b occupied done_ in
  let out_transfer = S.land_ b out_valid out_ready in
  (* Accept a new token when idle, or in the same cycle the old one
     leaves. *)
  let in_ready = S.lor_ b (S.lnot b occupied) out_transfer in
  S.assign input.Channel.ready in_ready;
  let in_transfer = S.land_ b input.Channel.valid in_ready in
  let occupied_next =
    S.lor_ b in_transfer (S.land_ b occupied (S.lnot b out_transfer))
  in
  let occ_reg = S.reg b occupied_next in
  ignore (S.set_name occ_reg (name ^ "_occupied"));
  S.assign occupied occ_reg;
  let lat = sample () in
  let counter_next =
    S.mux2 b in_transfer lat
      (S.mux2 b (S.land_ b occupied (S.lnot b done_))
         (S.sub b counter (S.of_int b ~width:cnt_w 1))
         counter)
  in
  let cnt_reg = S.reg b counter_next in
  S.assign counter cnt_reg;
  let data_reg = S.reg b ~enable:in_transfer (f b input.Channel.data) in
  ignore (S.set_name data_reg (name ^ "_data"));
  { Channel.valid = out_valid; data = data_reg; ready = out_ready }
