(** Branch (Fig. 3): steer the input token by a 1-bit condition
    (combinational in the input data). *)

module S := Hw.Signal

type t = { out_true : Channel.t; out_false : Channel.t }

val create : S.builder -> Channel.t -> cond:S.t -> t
