lib/elastic/fork.mli: Channel Hw
