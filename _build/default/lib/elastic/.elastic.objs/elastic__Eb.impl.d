lib/elastic/eb.ml: Channel Hw List Printf
