lib/elastic/varlat.ml: Channel Hw
