lib/elastic/join.mli: Channel Hw
