lib/elastic/varlat.mli: Channel Hw
