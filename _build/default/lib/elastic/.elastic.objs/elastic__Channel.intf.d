lib/elastic/channel.mli: Hw
