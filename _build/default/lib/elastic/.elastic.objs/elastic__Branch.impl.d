lib/elastic/branch.ml: Channel Hw
