lib/elastic/branch.mli: Channel Hw
