lib/elastic/eb.mli: Channel Hw
