lib/elastic/merge.mli: Channel Hw
