lib/elastic/join.ml: Channel Hw List
