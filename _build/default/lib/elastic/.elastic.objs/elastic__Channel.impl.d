lib/elastic/channel.ml: Hw
