lib/elastic/fork.ml: Array Channel Hw List Printf
