lib/elastic/merge.ml: Channel Hw
