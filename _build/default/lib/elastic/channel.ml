(* A single-thread elastic channel: data plus the valid/ready handshake
   of Fig. 2 of the paper.  A transfer happens on a cycle where both
   [valid] and [ready] are high.

   Convention: the producer of a channel drives [valid] and [data] and
   creates [ready] as an unassigned wire; the consumer assigns [ready].
   Operators consume their input channels (assigning the input's
   [ready]) and produce fresh output channels. *)

module S = Hw.Signal

type t = { valid : S.t; data : S.t; ready : S.t }

let width t = S.width t.data

(* A channel whose three signals are wires; used for feedback loops. *)
let wires b ~width =
  { valid = S.wire b 1; data = S.wire b width; ready = S.wire b 1 }

(* Connect producer [src] to consumer-side channel [dst] (both created
   with [wires]): forwards valid/data downstream and ready upstream. *)
let connect ~src ~dst =
  S.assign dst.valid src.valid;
  S.assign dst.data src.data;
  S.assign src.ready dst.ready

let transfer b t = S.land_ b t.valid t.ready

(* Map the payload through a combinational function; handshake passes
   through untouched. *)
let map b t ~f = { t with data = f b t.data }

(* Host-driven source: the testbench pokes <name>_valid / <name>_data
   and reads <name>_ready. *)
let source b ~name ~width =
  let valid = S.input b (name ^ "_valid") 1 in
  let data = S.input b (name ^ "_data") width in
  let ready = S.wire b 1 in
  ignore (S.output b (name ^ "_ready") ready);
  { valid; data; ready }

(* Host-driven sink: the testbench pokes <name>_ready and reads
   <name>_valid / <name>_data. *)
let sink b ~name t =
  ignore (S.output b (name ^ "_valid") t.valid);
  ignore (S.output b (name ^ "_data") t.data);
  let ready = S.input b (name ^ "_ready") 1 in
  S.assign t.ready ready;
  ignore (S.output b (name ^ "_fire") (S.land_ b t.valid ready))

(* Name the channel's signals for waveforms and peeking. *)
let label t ~name =
  ignore (S.set_name t.valid (name ^ "_valid"));
  ignore (S.set_name t.data (name ^ "_data"));
  ignore (S.set_name t.ready (name ^ "_ready"));
  t
