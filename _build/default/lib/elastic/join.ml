(* Lazy join (Fig. 3): the output fires only when every input carries
   valid data; each input's ready requires the output ready and all
   sibling valids, so tokens are consumed simultaneously. *)

module S = Hw.Signal

let create ?(combine = fun b a c -> S.concat_msb b [ a; c ]) b
    (a : Channel.t) (c : Channel.t) =
  let out_valid = S.land_ b a.Channel.valid c.Channel.valid in
  let out_ready = S.wire b 1 in
  S.assign a.Channel.ready (S.land_ b out_ready c.Channel.valid);
  S.assign c.Channel.ready (S.land_ b out_ready a.Channel.valid);
  { Channel.valid = out_valid;
    data = combine b a.Channel.data c.Channel.data;
    ready = out_ready }

let create_list ?combine b channels =
  match channels with
  | [] -> invalid_arg "Join.create_list: no inputs"
  | [ c ] -> c
  | first :: rest -> List.fold_left (fun acc c -> create ?combine b acc c) first rest
