(* Fork (Fig. 3): replicates one input token to every output.

   The eager variant delivers to each output as soon as that output is
   ready, remembering which branches were already served with one
   [done] flip-flop per output; the input token is consumed once every
   branch has been served.  Eager forks keep valid independent of
   sibling readiness, avoiding the combinational valid/ready cycles a
   lazy fork creates through a downstream join.

   The lazy variant fires all outputs in the same cycle and is provided
   for completeness (and for the cycle-detection tests). *)

module S = Hw.Signal

let eager ?(name = "fork") b (input : Channel.t) ~n =
  if n < 2 then invalid_arg "Fork.eager: need at least 2 outputs";
  let out_readys = Array.init n (fun _ -> S.wire b 1) in
  let done_wires = Array.init n (fun _ -> S.wire b 1) in
  (* in.ready must not depend on in.valid (a ready-aware producer's
     valid may depend on this ready): branch i is satisfied when it was
     already served or its consumer is ready right now. *)
  let satisfied =
    Array.init n (fun i -> S.lor_ b done_wires.(i) out_readys.(i))
  in
  let in_ready = S.and_reduce b (Array.to_list satisfied) in
  let in_transfer = S.land_ b input.Channel.valid in_ready in
  S.assign input.Channel.ready in_ready;
  for i = 0 to n - 1 do
    let transfer_i =
      S.land_ b input.Channel.valid
        (S.land_ b (S.lnot b done_wires.(i)) out_readys.(i))
    in
    let next =
      S.land_ b (S.lor_ b done_wires.(i) transfer_i) (S.lnot b in_transfer)
    in
    let d = S.reg b next in
    ignore (S.set_name d (Printf.sprintf "%s_done%d" name i));
    S.assign done_wires.(i) d
  done;
  Array.to_list
    (Array.init n (fun i ->
         { Channel.valid = S.land_ b input.Channel.valid (S.lnot b done_wires.(i));
           data = input.Channel.data;
           ready = out_readys.(i) }))

let lazy_ b (input : Channel.t) ~n =
  if n < 2 then invalid_arg "Fork.lazy_: need at least 2 outputs";
  let out_readys = Array.init n (fun _ -> S.wire b 1) in
  let all_ready = S.and_reduce b (Array.to_list out_readys) in
  S.assign input.Channel.ready all_ready;
  Array.to_list
    (Array.init n (fun i ->
         let others =
           List.filteri (fun j _ -> j <> i) (Array.to_list out_readys)
         in
         let others_ready =
           match others with [] -> S.vdd b | l -> S.and_reduce b l
         in
         { Channel.valid = S.land_ b input.Channel.valid others_ready;
           data = input.Channel.data;
           ready = out_readys.(i) }))
