(* Merge (Fig. 3): funnels two channels into one.  In circuits
   synthesized from if-then-else control flow the two inputs are
   mutually exclusive by construction; this implementation is
   nevertheless safe when both present tokens — input A has priority
   and B waits, so no token is ever dropped or duplicated. *)

module S = Hw.Signal

let create b (a : Channel.t) (c : Channel.t) =
  if Channel.width a <> Channel.width c then
    invalid_arg "Merge.create: width mismatch";
  let out_ready = S.wire b 1 in
  S.assign a.Channel.ready out_ready;
  S.assign c.Channel.ready (S.land_ b out_ready (S.lnot b a.Channel.valid));
  { Channel.valid = S.lor_ b a.Channel.valid c.Channel.valid;
    data = S.mux2 b a.Channel.valid a.Channel.data c.Channel.data;
    ready = out_ready }
