(** Merge (Fig. 3): funnel two channels into one.  Inputs produced by
    a branch are mutually exclusive; if both are valid anyway, input A
    has priority and B waits (no token is dropped). *)

module S := Hw.Signal

val create : S.builder -> Channel.t -> Channel.t -> Channel.t
