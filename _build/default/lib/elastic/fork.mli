(** Fork (Fig. 3): replicate one token to [n] outputs.

    [eager] serves each output as soon as it is ready (one done-flag
    per branch) and keeps the input ready independent of the input
    valid — safe to compose with ready-aware producers and downstream
    joins.  [lazy_] fires all outputs in the same cycle; composing it
    with a join creates the textbook combinational cycle (rejected at
    elaboration), so it exists for completeness and negative tests. *)

module S := Hw.Signal

val eager : ?name:string -> S.builder -> Channel.t -> n:int -> Channel.t list
val lazy_ : S.builder -> Channel.t -> n:int -> Channel.t list
