(** The baseline 2-slot elastic buffer of Section II: a 3-state FSM
    (EMPTY/HALF/FULL) over a main and an auxiliary register.  With
    one-cycle forward and backward handshake latency, two slots are
    the minimum for full throughput [Carloni et al.].  Both [valid]
    and [ready] derive from registered state only, so EB-separated
    logic has no combinational handshake paths. *)

module S := Hw.Signal

type t = {
  out : Channel.t;
  state : S.t;  (** 2-bit FSM state (0 empty / 1 half / 2 full) *)
  occupancy : S.t;  (** items stored: 0, 1 or 2 *)
}

val create : ?name:string -> S.builder -> Channel.t -> t

val chain : ?name:string -> S.builder -> n:int -> Channel.t -> Channel.t * t list
(** [n] EBs in series; returns the final channel and every stage. *)
