(* Branch (Fig. 3): routes the input token to output A when [cond] is
   high, to output B otherwise.  [cond] is combinational in the input
   data (an "if-then-else" steering flag). *)

module S = Hw.Signal

type t = { out_true : Channel.t; out_false : Channel.t }

let create b (input : Channel.t) ~cond =
  if S.width cond <> 1 then invalid_arg "Branch.create: cond must be 1 bit";
  let ready_t = S.wire b 1 and ready_f = S.wire b 1 in
  S.assign input.Channel.ready (S.mux2 b cond ready_t ready_f);
  { out_true =
      { Channel.valid = S.land_ b input.Channel.valid cond;
        data = input.Channel.data;
        ready = ready_t };
    out_false =
      { Channel.valid = S.land_ b input.Channel.valid (S.lnot b cond);
        data = input.Channel.data;
        ready = ready_f } }
