(** Lazy join (Fig. 3): fires when every input is valid; inputs are
    consumed simultaneously.  [combine] builds the output payload
    (default: MSB-first concatenation). *)

module S := Hw.Signal

val create :
  ?combine:(S.builder -> S.t -> S.t -> S.t) ->
  S.builder -> Channel.t -> Channel.t -> Channel.t

val create_list :
  ?combine:(S.builder -> S.t -> S.t -> S.t) ->
  S.builder -> Channel.t list -> Channel.t
