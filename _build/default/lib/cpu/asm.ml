(* A small two-pass assembler for the ISA.

   Syntax, one instruction or directive per line:

     start:  addi r1, r0, 5      ; comments with ';' or '#'
             lw   r2, 4(r3)
             beq  r1, r2, done   ; branch targets may be labels
             j    start
     done:   halt
             .word 42            ; literal data word

   Branch label targets assemble to PC-relative immediates; jump label
   targets to absolute addresses. *)

type line = {
  label : string option;
  body : string; (* instruction text, possibly empty *)
  lineno : int;
}

exception Error of string

let fail lineno fmt =
  Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" lineno s))) fmt

let strip_comment s =
  let cut c s = match String.index_opt s c with Some i -> String.sub s 0 i | None -> s in
  cut ';' (cut '#' s)

let parse_lines text =
  let raw = String.split_on_char '\n' text in
  List.filteri (fun _ _ -> true) raw
  |> List.mapi (fun i s -> (i + 1, String.trim (strip_comment s)))
  |> List.filter (fun (_, s) -> s <> "")
  |> List.map (fun (lineno, s) ->
         match String.index_opt s ':' with
         | Some i
           when String.for_all
                  (fun c -> c = '_' || c = '.' ||
                            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                            || (c >= '0' && c <= '9'))
                  (String.sub s 0 i) ->
           { label = Some (String.sub s 0 i);
             body = String.trim (String.sub s (i + 1) (String.length s - i - 1));
             lineno }
         | _ -> { label = None; body = s; lineno })

let split_operands body =
  match String.index_opt body ' ' with
  | None -> (String.lowercase_ascii body, [])
  | Some i ->
    let m = String.lowercase_ascii (String.sub body 0 i) in
    let rest = String.sub body i (String.length body - i) in
    let ops =
      String.split_on_char ',' rest |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    (m, ops)

let parse_reg lineno s =
  let s = String.lowercase_ascii s in
  if String.length s >= 2 && s.[0] = 'r' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some r when r >= 0 && r < Isa.num_regs -> r
    | _ -> fail lineno "bad register %s" s
  else fail lineno "expected register, got %s" s

(* Either a number or a label (resolved in pass 2). *)
type operand_imm = Num of int | Label of string

let parse_imm lineno s =
  match int_of_string_opt s with
  | Some n -> Num n
  | None ->
    if s <> "" then Label s else fail lineno "expected immediate"

(* "imm(reg)" for memory operands. *)
let parse_mem lineno s =
  match String.index_opt s '(' with
  | Some i when s.[String.length s - 1] = ')' ->
    let off = String.trim (String.sub s 0 i) in
    let reg = String.sub s (i + 1) (String.length s - i - 2) in
    let off = if off = "" then 0 else
        match int_of_string_opt off with
        | Some n -> n
        | None -> fail lineno "bad offset %s" off
    in
    (off, parse_reg lineno reg)
  | _ -> fail lineno "expected offset(register), got %s" s

type statement =
  | Instr of Isa.opcode * int * int * int * operand_imm (* op rd rs rt imm *)
  | Word of int

let parse_statement lineno body =
  let m, ops = split_operands body in
  let num = List.length ops in
  let expect n = if num <> n then fail lineno "%s expects %d operands" m n in
  let reg i = parse_reg lineno (List.nth ops i) in
  let imm i = parse_imm lineno (List.nth ops i) in
  match m with
  | ".word" ->
    expect 1;
    (match imm 0 with
     | Num n -> Word (n land 0xffffffff)
     | Label _ -> fail lineno ".word takes a number")
  | "nop" -> expect 0; Instr (Isa.NOP, 0, 0, 0, Num 0)
  | "halt" -> expect 0; Instr (Isa.HALT, 0, 0, 0, Num 0)
  | "add" | "sub" | "and" | "or" | "xor" | "slt" | "sltu" | "sll" | "srl"
  | "sra" | "mul" ->
    expect 3;
    let op =
      match m with
      | "add" -> Isa.ADD | "sub" -> Isa.SUB | "and" -> Isa.AND | "or" -> Isa.OR
      | "xor" -> Isa.XOR | "slt" -> Isa.SLT | "sltu" -> Isa.SLTU
      | "sll" -> Isa.SLL | "srl" -> Isa.SRL | "sra" -> Isa.SRA | _ -> Isa.MUL
    in
    Instr (op, reg 0, reg 1, reg 2, Num 0)
  | "addi" | "andi" | "ori" | "xori" | "slti" ->
    expect 3;
    let op =
      match m with
      | "addi" -> Isa.ADDI | "andi" -> Isa.ANDI | "ori" -> Isa.ORI
      | "xori" -> Isa.XORI | _ -> Isa.SLTI
    in
    Instr (op, reg 0, reg 1, 0, imm 2)
  | "lui" -> expect 2; Instr (Isa.LUI, reg 0, 0, 0, imm 1)
  | "li" ->
    (* pseudo: li rd, n  ==  addi rd, r0, n (small n only) *)
    expect 2;
    Instr (Isa.ADDI, reg 0, 0, 0, imm 1)
  | "mv" -> expect 2; Instr (Isa.ADD, reg 0, reg 1, 0, Num 0)
  | "lw" ->
    expect 2;
    let off, base = parse_mem lineno (List.nth ops 1) in
    Instr (Isa.LW, reg 0, base, 0, Num off)
  | "sw" ->
    expect 2;
    let off, base = parse_mem lineno (List.nth ops 1) in
    Instr (Isa.SW, 0, base, reg 0, Num off)
  | "beq" | "bne" | "blt" | "bge" ->
    expect 3;
    let op =
      match m with
      | "beq" -> Isa.BEQ | "bne" -> Isa.BNE | "blt" -> Isa.BLT | _ -> Isa.BGE
    in
    Instr (op, 0, reg 0, reg 1, imm 2)
  | "j" -> expect 1; Instr (Isa.J, 0, 0, 0, imm 0)
  | "jal" -> expect 2; Instr (Isa.JAL, reg 0, 0, 0, imm 1)
  | "jr" -> expect 1; Instr (Isa.JR, 0, reg 0, 0, Num 0)
  | _ -> fail lineno "unknown mnemonic %s" m

(* Assemble to 32-bit words starting at [origin] (word addresses). *)
let assemble ?(origin = 0) text =
  let lines = parse_lines text in
  (* Pass 1: label addresses. *)
  let labels = Hashtbl.create 16 in
  let pc = ref origin in
  List.iter
    (fun l ->
      (match l.label with
       | Some name ->
         if Hashtbl.mem labels name then fail l.lineno "duplicate label %s" name;
         Hashtbl.replace labels name !pc
       | None -> ());
      if l.body <> "" then incr pc)
    lines;
  (* Pass 2: encode. *)
  let resolve lineno ~relative_to = function
    | Num n -> n
    | Label name ->
      (match Hashtbl.find_opt labels name with
       | None -> fail lineno "undefined label %s" name
       | Some addr ->
         (match relative_to with Some pc -> addr - pc | None -> addr))
  in
  let pc = ref origin in
  let words =
    List.filter_map
      (fun l ->
        if l.body = "" then None
        else begin
          let this_pc = !pc in
          incr pc;
          match parse_statement l.lineno l.body with
          | Word w -> Some w
          | Instr (op, rd, rs, rt, imm) ->
            let relative_to =
              match op with
              | Isa.BEQ | Isa.BNE | Isa.BLT | Isa.BGE -> Some this_pc
              | _ -> None
            in
            let imm = resolve l.lineno ~relative_to imm in
            (try Some (Isa.encode (Isa.make ~rd ~rs ~rt ~imm op))
             with Invalid_argument msg -> fail l.lineno "%s" msg)
        end)
      lines
  in
  (words, labels)

let assemble_words ?origin text = fst (assemble ?origin text)
