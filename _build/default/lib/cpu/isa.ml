(* The processor's instruction set — a 32-bit RISC in the mold of the
   iDEA soft processor the paper builds on [Cheah et al., FPT 2012]:
   16 general-purpose registers (r0 wired to zero), ALU / shift /
   multiply, loads and stores, conditional branches, jumps and HALT.

   Encoding (32 bits):
     [31:26] opcode   [25:22] rd   [21:18] rs   [17:14] rt   [13:0] imm

   imm is sign-extended except for the bitwise immediates (ANDI / ORI /
   XORI), which zero-extend.  The PC is word-addressed and
   [pc_width] bits wide; branch targets are PC-relative, jump targets
   absolute. *)

type opcode =
  | NOP
  | ADD | SUB | AND | OR | XOR | SLT | SLTU | SLL | SRL | SRA | MUL
  | ADDI | ANDI | ORI | XORI | SLTI
  | LUI
  | LW | SW
  | BEQ | BNE | BLT | BGE
  | J | JAL | JR
  | HALT

let pc_width = 14
let imm_width = 14
let num_regs = 16

let opcode_value = function
  | NOP -> 0x00
  | ADD -> 0x01 | SUB -> 0x02 | AND -> 0x03 | OR -> 0x04 | XOR -> 0x05
  | SLT -> 0x06 | SLTU -> 0x07 | SLL -> 0x08 | SRL -> 0x09 | SRA -> 0x0a
  | MUL -> 0x0b
  | ADDI -> 0x10 | ANDI -> 0x11 | ORI -> 0x12 | XORI -> 0x13 | SLTI -> 0x14
  | LUI -> 0x15
  | LW -> 0x20 | SW -> 0x21
  | BEQ -> 0x30 | BNE -> 0x31 | BLT -> 0x32 | BGE -> 0x33
  | J -> 0x34 | JAL -> 0x35 | JR -> 0x36
  | HALT -> 0x3f

let opcode_of_value = function
  | 0x00 -> Some NOP
  | 0x01 -> Some ADD | 0x02 -> Some SUB | 0x03 -> Some AND | 0x04 -> Some OR
  | 0x05 -> Some XOR | 0x06 -> Some SLT | 0x07 -> Some SLTU | 0x08 -> Some SLL
  | 0x09 -> Some SRL | 0x0a -> Some SRA | 0x0b -> Some MUL
  | 0x10 -> Some ADDI | 0x11 -> Some ANDI | 0x12 -> Some ORI | 0x13 -> Some XORI
  | 0x14 -> Some SLTI | 0x15 -> Some LUI
  | 0x20 -> Some LW | 0x21 -> Some SW
  | 0x30 -> Some BEQ | 0x31 -> Some BNE | 0x32 -> Some BLT | 0x33 -> Some BGE
  | 0x34 -> Some J | 0x35 -> Some JAL | 0x36 -> Some JR
  | 0x3f -> Some HALT
  | _ -> None

type instr = {
  op : opcode;
  rd : int;
  rs : int;
  rt : int;
  imm : int; (* raw 14-bit field, unsigned *)
}

let check_reg r = if r < 0 || r >= num_regs then invalid_arg "Isa: bad register"

let make ?(rd = 0) ?(rs = 0) ?(rt = 0) ?(imm = 0) op =
  check_reg rd; check_reg rs; check_reg rt;
  if imm < -(1 lsl (imm_width - 1)) || imm >= 1 lsl imm_width then
    invalid_arg "Isa: immediate out of range";
  { op; rd; rs; rt; imm = imm land ((1 lsl imm_width) - 1) }

let encode i =
  (opcode_value i.op lsl 26) lor (i.rd lsl 22) lor (i.rs lsl 18) lor (i.rt lsl 14)
  lor i.imm

let decode word =
  match opcode_of_value ((word lsr 26) land 0x3f) with
  | None -> None
  | Some op ->
    Some
      { op;
        rd = (word lsr 22) land 0xf;
        rs = (word lsr 18) land 0xf;
        rt = (word lsr 14) land 0xf;
        imm = word land 0x3fff }

(* Sign-extended immediate as an OCaml int. *)
let imm_signed i =
  if i.imm land (1 lsl (imm_width - 1)) <> 0 then i.imm - (1 lsl imm_width)
  else i.imm

(* Does this opcode sign-extend its immediate? *)
let sign_extends = function
  | ANDI | ORI | XORI | LUI -> false
  | NOP | ADD | SUB | AND | OR | XOR | SLT | SLTU | SLL | SRL | SRA | MUL
  | ADDI | SLTI | LW | SW | BEQ | BNE | BLT | BGE | J | JAL | JR | HALT -> true

let writes_register = function
  | ADD | SUB | AND | OR | XOR | SLT | SLTU | SLL | SRL | SRA | MUL
  | ADDI | ANDI | ORI | XORI | SLTI | LUI | LW | JAL -> true
  | NOP | SW | BEQ | BNE | BLT | BGE | J | JR | HALT -> false

let mnemonic = function
  | NOP -> "nop" | ADD -> "add" | SUB -> "sub" | AND -> "and" | OR -> "or"
  | XOR -> "xor" | SLT -> "slt" | SLTU -> "sltu" | SLL -> "sll" | SRL -> "srl"
  | SRA -> "sra" | MUL -> "mul" | ADDI -> "addi" | ANDI -> "andi" | ORI -> "ori"
  | XORI -> "xori" | SLTI -> "slti" | LUI -> "lui" | LW -> "lw" | SW -> "sw"
  | BEQ -> "beq" | BNE -> "bne" | BLT -> "blt" | BGE -> "bge" | J -> "j"
  | JAL -> "jal" | JR -> "jr" | HALT -> "halt"

let all_opcodes =
  [ NOP; ADD; SUB; AND; OR; XOR; SLT; SLTU; SLL; SRL; SRA; MUL; ADDI; ANDI;
    ORI; XORI; SLTI; LUI; LW; SW; BEQ; BNE; BLT; BGE; J; JAL; JR; HALT ]

let to_string i =
  match i.op with
  | NOP | HALT -> mnemonic i.op
  | ADD | SUB | AND | OR | XOR | SLT | SLTU | SLL | SRL | SRA | MUL ->
    Printf.sprintf "%s r%d, r%d, r%d" (mnemonic i.op) i.rd i.rs i.rt
  | ADDI | ANDI | ORI | XORI | SLTI ->
    Printf.sprintf "%s r%d, r%d, %d" (mnemonic i.op) i.rd i.rs (imm_signed i)
  | LUI -> Printf.sprintf "lui r%d, %d" i.rd i.imm
  | LW -> Printf.sprintf "lw r%d, %d(r%d)" i.rd (imm_signed i) i.rs
  | SW -> Printf.sprintf "sw r%d, %d(r%d)" i.rt (imm_signed i) i.rs
  | BEQ | BNE | BLT | BGE ->
    Printf.sprintf "%s r%d, r%d, %d" (mnemonic i.op) i.rs i.rt (imm_signed i)
  | J -> Printf.sprintf "j %d" i.imm
  | JAL -> Printf.sprintf "jal r%d, %d" i.rd i.imm
  | JR -> Printf.sprintf "jr r%d" i.rs
