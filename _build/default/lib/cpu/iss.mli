(** Reference instruction-set simulator — the architectural golden
    model the elastic pipeline is checked against.  Each thread owns a
    register file and PC; data memory is shared (co-simulation
    programs keep per-thread regions disjoint so interleaving is
    immaterial). *)

type thread_state = {
  mutable pc : int;
  regs : int array;
  mutable halted : bool;
  mutable retired : int;
}

type t = {
  imem : int array;
  dmem : int array;
  threads : thread_state array;
}

exception Trap of string
(** Illegal instruction or out-of-range access. *)

val create :
  imem:int array -> dmem_size:int -> threads:int -> start_pcs:int array -> t

val step : t -> thread_state -> unit
(** Execute one instruction of one thread (no-op when halted). *)

val run : ?max_steps:int -> t -> bool
(** Round-robin all threads until all halt; true when they did. *)

val reg_value : t -> thread:int -> reg:int -> int
val dmem_value : t -> int -> int
val halted : t -> thread:int -> bool
