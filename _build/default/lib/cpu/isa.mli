(** The processor's instruction set — a 32-bit RISC in the mold of the
    iDEA soft processor the paper builds on (Cheah et al., FPT 2012):
    16 registers (r0 = 0), ALU/shift/multiply, loads/stores, branches,
    jumps, HALT.

    Encoding: [[31:26] opcode | [25:22] rd | [21:18] rs | [17:14] rt |
    [13:0] imm].  The immediate sign-extends except for ANDI/ORI/XORI/
    LUI.  The PC is word-addressed, {!pc_width} bits; branches are
    PC-relative, jumps absolute. *)

type opcode =
  | NOP
  | ADD | SUB | AND | OR | XOR | SLT | SLTU | SLL | SRL | SRA | MUL
  | ADDI | ANDI | ORI | XORI | SLTI
  | LUI
  | LW | SW
  | BEQ | BNE | BLT | BGE
  | J | JAL | JR
  | HALT

val pc_width : int
val imm_width : int
val num_regs : int

val opcode_value : opcode -> int
val opcode_of_value : int -> opcode option

type instr = {
  op : opcode;
  rd : int;
  rs : int;
  rt : int;
  imm : int;  (** raw 14-bit field, unsigned *)
}

val make : ?rd:int -> ?rs:int -> ?rt:int -> ?imm:int -> opcode -> instr
(** Validates field ranges; [imm] may be given signed. *)

val encode : instr -> int
val decode : int -> instr option

val imm_signed : instr -> int
val sign_extends : opcode -> bool
val writes_register : opcode -> bool
val mnemonic : opcode -> string
val all_opcodes : opcode list
val to_string : instr -> string
