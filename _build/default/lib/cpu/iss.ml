(* Reference instruction-set simulator: the architectural golden model
   the elastic pipeline is checked against.

   Each thread owns a register file and PC; data memory is shared.
   [step] executes one instruction of one thread.  For co-simulation
   the test programs keep per-thread data regions disjoint, so any
   thread interleaving produces the same final state. *)

let mask32 = 0xffffffff

type thread_state = {
  mutable pc : int;
  regs : int array;
  mutable halted : bool;
  mutable retired : int;
}

type t = {
  imem : int array;
  dmem : int array;
  threads : thread_state array;
}

let create ~imem ~dmem_size ~threads ~start_pcs =
  if Array.length start_pcs <> threads then invalid_arg "Iss.create: start_pcs";
  { imem;
    dmem = Array.make dmem_size 0;
    threads =
      Array.init threads (fun i ->
          { pc = start_pcs.(i); regs = Array.make Isa.num_regs 0; halted = false;
            retired = 0 }) }

let signed32 v = if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

exception Trap of string

(* Execute one instruction for thread [t]; no-op if halted. *)
let step t (st : thread_state) =
  if st.halted then ()
  else begin
    let word =
      if st.pc < 0 || st.pc >= Array.length t.imem then
        raise (Trap (Printf.sprintf "pc out of range: %d" st.pc))
      else t.imem.(st.pc)
    in
    let i =
      match Isa.decode word with
      | Some i -> i
      | None -> raise (Trap (Printf.sprintf "illegal instruction %08x at %d" word st.pc))
    in
    let reg r = if r = 0 then 0 else st.regs.(r) in
    let wreg r v = if r <> 0 then st.regs.(r) <- v land mask32 in
    let imm_s = Isa.imm_signed i in
    let imm_z = i.Isa.imm in
    let a = reg i.Isa.rs and bv = reg i.Isa.rt in
    let next = ref ((st.pc + 1) land ((1 lsl Isa.pc_width) - 1)) in
    (match i.Isa.op with
     | Isa.NOP -> ()
     | Isa.ADD -> wreg i.Isa.rd (a + bv)
     | Isa.SUB -> wreg i.Isa.rd (a - bv)
     | Isa.AND -> wreg i.Isa.rd (a land bv)
     | Isa.OR -> wreg i.Isa.rd (a lor bv)
     | Isa.XOR -> wreg i.Isa.rd (a lxor bv)
     | Isa.SLT -> wreg i.Isa.rd (if signed32 a < signed32 bv then 1 else 0)
     | Isa.SLTU -> wreg i.Isa.rd (if a < bv then 1 else 0)
     | Isa.SLL -> wreg i.Isa.rd (a lsl (bv land 31))
     | Isa.SRL -> wreg i.Isa.rd (a lsr (bv land 31))
     | Isa.SRA -> wreg i.Isa.rd (signed32 a asr (bv land 31))
     | Isa.MUL -> wreg i.Isa.rd (a * bv)
     | Isa.ADDI -> wreg i.Isa.rd (a + imm_s)
     | Isa.ANDI -> wreg i.Isa.rd (a land imm_z)
     | Isa.ORI -> wreg i.Isa.rd (a lor imm_z)
     | Isa.XORI -> wreg i.Isa.rd (a lxor imm_z)
     | Isa.SLTI -> wreg i.Isa.rd (if signed32 a < imm_s then 1 else 0)
     | Isa.LUI -> wreg i.Isa.rd (imm_z lsl 18)
     | Isa.LW ->
       let addr = (a + imm_s) land mask32 in
       if addr >= Array.length t.dmem then
         raise (Trap (Printf.sprintf "load out of range: %d" addr));
       wreg i.Isa.rd t.dmem.(addr)
     | Isa.SW ->
       let addr = (a + imm_s) land mask32 in
       if addr >= Array.length t.dmem then
         raise (Trap (Printf.sprintf "store out of range: %d" addr));
       t.dmem.(addr) <- bv
     | Isa.BEQ -> if a = bv then next := (st.pc + imm_s) land ((1 lsl Isa.pc_width) - 1)
     | Isa.BNE -> if a <> bv then next := (st.pc + imm_s) land ((1 lsl Isa.pc_width) - 1)
     | Isa.BLT ->
       if signed32 a < signed32 bv then
         next := (st.pc + imm_s) land ((1 lsl Isa.pc_width) - 1)
     | Isa.BGE ->
       if signed32 a >= signed32 bv then
         next := (st.pc + imm_s) land ((1 lsl Isa.pc_width) - 1)
     | Isa.J -> next := imm_z land ((1 lsl Isa.pc_width) - 1)
     | Isa.JAL ->
       wreg i.Isa.rd (st.pc + 1);
       next := imm_z land ((1 lsl Isa.pc_width) - 1)
     | Isa.JR -> next := a land ((1 lsl Isa.pc_width) - 1)
     | Isa.HALT -> st.halted <- true);
    st.retired <- st.retired + 1;
    if not st.halted then st.pc <- !next
  end

(* Run all threads round-robin (one instruction each per rotation)
   until every thread halts or the step budget runs out; returns true
   when all halted. *)
let run ?(max_steps = 100_000) t =
  let rec go budget =
    if Array.for_all (fun st -> st.halted) t.threads then true
    else if budget <= 0 then false
    else begin
      Array.iter (fun st -> step t st) t.threads;
      go (budget - 1)
    end
  in
  go max_steps

let reg_value t ~thread ~reg = t.threads.(thread).regs.(reg)
let dmem_value t addr = t.dmem.(addr)
let halted t ~thread = t.threads.(thread).halted
