(** Two-pass assembler for the ISA.

    One instruction or directive per line; [';'] and ['#'] start
    comments; [label:] defines a word address.  Branch label targets
    assemble PC-relative, jump targets absolute.  Pseudo-instructions:
    [li rd, n] (= addi rd, r0, n) and [mv rd, rs].  [.word n] emits a
    literal data word. *)

exception Error of string

val assemble : ?origin:int -> string -> int list * (string, int) Hashtbl.t
(** Returns the 32-bit words and the label table.
    Raises {!Error} with a line-numbered message. *)

val assemble_words : ?origin:int -> string -> int list
