lib/cpu/mt_pipeline.ml: Arbiter Array Bits Hw Isa List Melastic Printf
