lib/cpu/iss.mli:
