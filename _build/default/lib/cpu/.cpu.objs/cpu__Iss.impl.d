lib/cpu/iss.ml: Array Isa Printf
