lib/cpu/mt_pipeline.mli: Hw Melastic
