lib/cpu/isa.mli:
