lib/cpu/asm.ml: Hashtbl Isa List Printf String
