lib/cpu/asm.mli: Hashtbl
