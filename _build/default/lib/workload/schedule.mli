(** Capture of Fig. 5-style schedules: which thread's token crosses
    each probed multithreaded channel at every cycle.

    Channels are observed through the outputs installed by
    {!Melastic.Mt_channel.probe} (sources/sinks export the same
    [<name>_fire]/[<name>_data] signals). *)

type cell = { thread : int; data : Bits.t }

type t

val attach : Hw.Sim.t -> threads:int -> probes:string list -> t

val render : t -> from_cycle:int -> to_cycle:int -> string
(** Rows = probes, columns = cycles, cells = token tags. *)

val tokens : t -> probe:string -> (int * cell) list
(** All tokens seen at one probe, oldest first, with their cycles. *)
