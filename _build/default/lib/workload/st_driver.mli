(** Host-side driver for a single-thread elastic design built with
    {!Elastic.Channel.source} / {!Elastic.Channel.sink}.

    The next pending item is offered whenever the source is ready; the
    sink's ready follows a per-cycle script.  All transfers are logged
    with their cycle. *)

type event = { cycle : int; data : Bits.t }

type t

val create : Hw.Sim.t -> src:string -> snk:string -> width:int -> t
val set_sink_ready : t -> (int -> bool) -> unit
val push : t -> Bits.t -> unit
val push_int : t -> int -> unit

val step : t -> unit
(** Advance one cycle: script the sink, offer the head item, log
    transfers, clock. *)

val run : t -> int -> unit

val inputs : t -> event list
(** Accepted injections, oldest first. *)

val outputs : t -> event list
val output_data : t -> Bits.t list
