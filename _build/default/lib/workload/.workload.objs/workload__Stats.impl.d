lib/workload/stats.ml: Format Hashtbl Hw List Option String
