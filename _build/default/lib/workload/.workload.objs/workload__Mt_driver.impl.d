lib/workload/mt_driver.ml: Array Bits Hw List Queue
