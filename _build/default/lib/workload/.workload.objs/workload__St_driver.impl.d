lib/workload/st_driver.ml: Bits Hw List Queue
