lib/workload/trace.ml: Bits Buffer Char Hashtbl List Option Printf String
