lib/workload/trace.mli: Bits
