lib/workload/st_driver.mli: Bits Hw
