lib/workload/schedule.mli: Bits Hw
