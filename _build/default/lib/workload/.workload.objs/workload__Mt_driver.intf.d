lib/workload/mt_driver.mli: Bits Hw Queue
