lib/workload/schedule.ml: Bits Hw List Option Trace
