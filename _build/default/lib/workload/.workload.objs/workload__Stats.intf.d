lib/workload/stats.mli: Hw
