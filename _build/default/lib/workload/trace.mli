(** Trace semantics of elastic systems (paper Fig. 1): circuits are
    equivalent when, per thread, the sequences of data values at each
    interface match — the cycles may differ. *)

type tagged = { thread : int; value : Bits.t }

val equivalent : reference:tagged list -> observed:tagged list -> bool

val render_rows :
  (string * (int -> string option)) list -> cycles:int -> string
(** One row per interface, one column per cycle; a cell function
    returns the token tag crossing at that cycle, if any. *)

(** {1 Token tags}

    The experiments encode tokens as [thread * 2^16 + seq] and render
    them as ["A0"], ["B3"], ... *)

val encode_tag : width:int -> thread:int -> seq:int -> Bits.t
val decode_tag : Bits.t -> int * int
val tag_to_string : Bits.t -> string
