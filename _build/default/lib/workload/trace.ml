(* Trace semantics of elastic systems (Fig. 1): a circuit is elastically
   equivalent to a reference when, per thread, the *sequence* of data
   values observed at each interface matches — the cycles at which they
   appear may differ. *)

type tagged = { thread : int; value : Bits.t }

let equivalent ~reference ~observed =
  let by_thread l =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let cur = Option.value ~default:[] (Hashtbl.find_opt tbl e.thread) in
        Hashtbl.replace tbl e.thread (e.value :: cur))
      l;
    tbl
  in
  let a = by_thread reference and b = by_thread observed in
  let threads =
    List.sort_uniq compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) a (Hashtbl.fold (fun k _ acc -> k :: acc) b []))
  in
  List.for_all
    (fun th ->
      let la = Option.value ~default:[] (Hashtbl.find_opt a th) in
      let lb = Option.value ~default:[] (Hashtbl.find_opt b th) in
      List.length la = List.length lb && List.for_all2 Bits.equal la lb)
    threads

(* Render a Fig. 1-style occupancy chart: one row per interface, one
   column per cycle; cells show the tag of the token transferring that
   cycle or a stall marker. *)
let render_rows rows ~cycles =
  let buf = Buffer.create 512 in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 5 rows
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  Buffer.add_string buf (pad "cycle" label_w);
  Buffer.add_string buf " |";
  for c = 0 to cycles - 1 do
    Buffer.add_string buf (pad (string_of_int c) 4)
  done;
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, cells) ->
      Buffer.add_string buf (pad label label_w);
      Buffer.add_string buf " |";
      for c = 0 to cycles - 1 do
        let cell = match cells c with Some s -> s | None -> "." in
        Buffer.add_string buf (pad cell 4)
      done;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

(* Tag encoding used across the experiments: data = thread * 2^16 + seq,
   rendered as "A0", "B3", ... *)
let encode_tag ~width ~thread ~seq = Bits.of_int ~width ((thread lsl 16) lor seq)

let decode_tag bits =
  let v = Bits.to_int_trunc bits in
  (v lsr 16, v land 0xffff)

let tag_to_string bits =
  let thread, seq = decode_tag bits in
  Printf.sprintf "%c%d" (Char.chr (Char.code 'A' + thread)) seq
