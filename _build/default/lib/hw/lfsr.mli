(** Maximal-length Fibonacci LFSRs — the in-circuit pseudo-random
    sources behind the variable-latency units. *)

val taps : int -> int list
(** Tap positions (1-based, MSB first) for widths 3..24; raises
    [Invalid_argument] otherwise. *)

val create :
  Signal.builder -> ?enable:Signal.t -> width:int -> seed:int -> unit -> Signal.t
(** The LFSR state register; advances every (enabled) cycle.  [seed]
    must be non-zero. *)

val model : width:int -> seed:int -> unit -> int
(** Pure reference generator producing the same sequence: each call
    returns the current state and advances. *)
