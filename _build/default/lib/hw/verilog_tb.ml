(* Self-checking Verilog testbench generation.

   Attach a recorder to a running simulation: every cycle it captures
   the primary-input values and the values of selected output signals.
   [emit] then produces a standalone Verilog testbench that
   instantiates the module produced by [Verilog], replays the recorded
   stimulus cycle by cycle, and compares the outputs against the
   recorded values — so the OCaml simulator's behaviour can be
   cross-checked under iverilog/Verilator outside this container. *)

type sample = {
  inputs : (string * Bits.t) list;
  outputs : (string * Bits.t) list;
}

type t = {
  circuit : Circuit.t;
  output_names : string list;
  mutable samples : sample list; (* reverse order *)
}

let attach sim ~outputs =
  let circuit = Sim.circuit sim in
  (* Outputs whose names collide with inputs are not DUT ports (the
     Verilog back end drops them); don't check them either. *)
  let outputs =
    List.filter (fun n -> not (Hashtbl.mem circuit.Circuit.inputs n)) outputs
  in
  let t = { circuit; output_names = outputs; samples = [] } in
  Sim.on_cycle sim (fun sim ->
      let inputs =
        Hashtbl.fold
          (fun name s acc -> (name, Sim.peek_signal sim s) :: acc)
          circuit.Circuit.inputs []
        |> List.sort compare
      in
      let outputs =
        List.map (fun n -> (n, Sim.peek sim n)) t.output_names
      in
      t.samples <- { inputs; outputs } :: t.samples);
  t

let emit ?(module_name = "top") ?(tb_name = "tb") t buf =
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let samples = List.rev t.samples in
  let input_decls =
    Hashtbl.fold (fun n s acc -> (n, s.Signal.width) :: acc) t.circuit.Circuit.inputs []
    |> List.sort compare
  in
  let output_decls =
    List.map
      (fun n -> (n, (Circuit.find_named t.circuit n).Signal.width))
      t.output_names
  in
  pr "// Self-checking testbench generated from a recorded simulation\n";
  pr "`timescale 1ns/1ps\n";
  pr "module %s;\n" tb_name;
  pr "  reg clk = 0;\n";
  List.iter (fun (n, w) -> pr "  reg %s%s;\n" (Verilog.width_decl w) n) input_decls;
  List.iter (fun (n, w) -> pr "  wire %s%s;\n" (Verilog.width_decl w) n) output_decls;
  pr "  integer errors = 0;\n\n";
  pr "  %s dut (\n    .clk(clk)" module_name;
  List.iter (fun (n, _) -> pr ",\n    .%s(%s)" n n) input_decls;
  List.iter (fun (n, _) -> pr ",\n    .%s(%s)" n n) output_decls;
  pr "\n  );\n\n";
  pr "  always #5 clk = ~clk;\n\n";
  pr "  task check(input [255:0] name, input [511:0] got, input [511:0] expect_);\n";
  pr "    if (got !== expect_) begin\n";
  pr "      $display(\"MISMATCH cycle=%%0d signal=%%0s got=%%h expected=%%h\", cycle, name, got, expect_);\n";
  pr "      errors = errors + 1;\n";
  pr "    end\n";
  pr "  endtask\n\n";
  pr "  integer cycle = 0;\n";
  pr "  initial begin\n";
  List.iteri
    (fun i sample ->
      pr "    // cycle %d\n" i;
      pr "    cycle = %d;\n" i;
      List.iter
        (fun (n, v) -> pr "    %s = %s;\n" n (Verilog.bits_literal v))
        sample.inputs;
      pr "    #1;\n";
      List.iter
        (fun (n, v) ->
          pr "    check(\"%s\", %s, %s);\n" n n (Verilog.bits_literal v))
        sample.outputs;
      pr "    @(posedge clk); #1;\n")
    samples;
  pr "    if (errors == 0) $display(\"TESTBENCH PASS (%d cycles)\");\n"
    (List.length samples);
  pr "    else $display(\"TESTBENCH FAIL: %%0d mismatches\", errors);\n";
  pr "    $finish;\n";
  pr "  end\n";
  pr "endmodule\n"

let to_string ?module_name ?tb_name t =
  let buf = Buffer.create 16384 in
  emit ?module_name ?tb_name t buf;
  Buffer.contents buf

(* Write both the DUT and its testbench next to each other. *)
let write_with_dut ?(module_name = "top") t ~dut_path ~tb_path =
  Verilog.write ~module_name t.circuit ~path:dut_path;
  let out = open_out tb_path in
  output_string out (to_string ~module_name t);
  close_out out
