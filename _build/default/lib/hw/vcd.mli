(** Minimal VCD (value change dump) writer.

    [attach sim ~path ~signals] hooks the simulator: the selected
    signals are dumped once per cycle (changes only).  Close the file
    when done. *)

type t

val attach : Sim.t -> path:string -> signals:(string * Signal.t) list -> t
val close : t -> unit
