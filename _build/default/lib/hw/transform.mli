(** Netlist optimization: constant folding and dead-node elimination.

    [optimize c] returns a behaviourally equivalent circuit — same
    inputs, outputs, register/memory state evolution — with constants
    propagated (operators over constants, identity/absorbing operands,
    constant-selector muxes, double negation, full-width selects,
    wire indirection) and everything outside the live cone of the
    outputs, registers and memory write ports removed.  Primary inputs
    are preserved even when unused, so testbenches keep working.

    Equivalence is enforced by the property tests in
    [test/test_transform.ml] (random circuits co-simulated before and
    after). *)

type stats = {
  nodes_before : int;
  nodes_after : int;
  folded : int;  (** folding rewrites applied *)
}

val optimize : ?name:string -> Circuit.t -> Circuit.t * stats
