(** Self-checking Verilog testbench generation.

    Attach a recorder to a simulation; every cycle it captures the
    primary inputs and selected named outputs.  [emit] produces a
    standalone testbench that instantiates the {!Verilog}-emitted
    module, replays the stimulus and compares outputs — for
    cross-checking the OCaml simulator under iverilog/Verilator.
    Outputs whose names collide with inputs are skipped (they are not
    DUT ports). *)

type t

val attach : Sim.t -> outputs:string list -> t
val emit : ?module_name:string -> ?tb_name:string -> t -> Buffer.t -> unit
val to_string : ?module_name:string -> ?tb_name:string -> t -> string

val write_with_dut : ?module_name:string -> t -> dut_path:string -> tb_path:string -> unit
(** Write the DUT module and its testbench to two files. *)
