(** Synthesizable Verilog-2001 emission from an elaborated circuit.

    Combinational nodes become continuous assignments; registers and
    memory write ports become [always @(posedge clk)] blocks; the
    implicit clock is exported as input [clk].  Output ports whose
    names collide with an input (e.g. a source's data echo) are
    omitted with a comment. *)

val width_decl : int -> string
(** ["[w-1:0] "] or [""] for 1-bit. *)

val bits_literal : Bits.t -> string
(** Verilog sized binary literal. *)

val to_buffer : ?module_name:string -> Circuit.t -> Buffer.t -> unit
val to_string : ?module_name:string -> Circuit.t -> string
val write : ?module_name:string -> Circuit.t -> path:string -> unit
