(** Cycle-accurate two-phase simulator.

    Each {!cycle}: settle all combinational nodes in topological
    order, run observers, commit registers and memory writes, settle
    again (so peeks after [cycle] see the new state).  Poke inputs at
    any time; call {!settle} to observe their combinational effect
    before committing. *)

type t

val create : Circuit.t -> t

val settle : t -> unit
(** Recompute all combinational values from current inputs/state. *)

val cycle : t -> unit
(** One clock cycle (settle, observe, commit, settle). *)

val cycles : t -> int -> unit

val cycle_no : t -> int
(** Number of cycles since creation or {!reset}. *)

val circuit : t -> Circuit.t

val on_cycle : t -> (t -> unit) -> unit
(** Register an observer called at the end of every cycle, before the
    state commit (i.e. it sees the cycle's settled values). *)

val poke : t -> string -> Bits.t -> unit
(** Set a primary input; takes effect at the next {!settle}/{!cycle}. *)

val poke_int : t -> string -> int -> unit

val peek : t -> string -> Bits.t
(** Read a named signal, output or input (see {!Circuit.find_named}). *)

val peek_int : t -> string -> int
val peek_bool : t -> string -> bool
val peek_signal : t -> Signal.t -> Bits.t

val reset : t -> unit
(** Restore registers and memories to their initial contents. *)

val mem_read : t -> Signal.memory -> int -> Bits.t
(** Direct testbench access to a memory's contents. *)

val mem_write : t -> Signal.memory -> int -> Bits.t -> unit
