(* ASCII waveform recorder: samples chosen signals every cycle and
   renders a text diagram in the style of the paper's Figs. 1 and 2.

   1-bit signals render as underscores and overlines; wider signals as
   framed hex values with '.' marking continuation of the same value. *)

type track = { label : string; signal : Signal.t; mutable samples : Bits.t list }

type t = { tracks : track list }

let attach sim ~signals =
  let tracks = List.map (fun (label, signal) -> { label; signal; samples = [] }) signals in
  Sim.on_cycle sim (fun sim ->
      List.iter
        (fun tr -> tr.samples <- Sim.peek_signal sim tr.signal :: tr.samples)
        tracks);
  { tracks }

let samples tr = Array.of_list (List.rev tr.samples)

(* Width in characters allotted to one cycle of a track. *)
let cell_width tracks =
  let max_hex =
    List.fold_left
      (fun acc tr ->
        if tr.signal.Signal.width = 1 then acc
        else max acc ((tr.signal.Signal.width + 3) / 4))
      1 tracks
  in
  max 2 (max_hex + 1)

let render ?(from_cycle = 0) ?to_cycle t =
  let cw = cell_width t.tracks in
  let buf = Buffer.create 1024 in
  let label_w =
    List.fold_left (fun acc tr -> max acc (String.length tr.label)) 5 t.tracks
  in
  let pad s w =
    if String.length s >= w then s else s ^ String.make (w - String.length s) ' '
  in
  let last =
    match to_cycle with
    | Some c -> c
    | None ->
      List.fold_left (fun acc tr -> max acc (List.length tr.samples)) 0 t.tracks - 1
  in
  (* Cycle-number ruler. *)
  Buffer.add_string buf (pad "cycle" label_w);
  Buffer.add_string buf " |";
  for c = from_cycle to last do
    Buffer.add_string buf (pad (string_of_int c) cw)
  done;
  Buffer.add_char buf '\n';
  List.iter
    (fun tr ->
      let data = samples tr in
      Buffer.add_string buf (pad tr.label label_w);
      Buffer.add_string buf " |";
      let prev = ref None in
      for c = from_cycle to last do
        if c >= Array.length data then Buffer.add_string buf (String.make cw ' ')
        else begin
          let v = data.(c) in
          if tr.signal.Signal.width = 1 then begin
            let ch = if Bits.to_bool v then '-' else '_' in
            Buffer.add_string buf (String.make cw ch)
          end
          else begin
            let same = match !prev with Some p -> Bits.equal p v | None -> false in
            let text = if same then "." else Bits.to_hex_string v in
            Buffer.add_string buf (pad text cw)
          end;
          prev := Some v
        end
      done;
      Buffer.add_char buf '\n')
    t.tracks;
  Buffer.contents buf
