(** ASCII waveform recorder (the rendering used for the paper's
    Figs. 1 and 2).

    [attach] samples the given signals every simulated cycle; [render]
    draws 1-bit tracks as [_]/[-] levels and wider tracks as hex
    values with ['.'] marking an unchanged value. *)

type t

val attach : Sim.t -> signals:(string * Signal.t) list -> t
val render : ?from_cycle:int -> ?to_cycle:int -> t -> string
