(* Minimal VCD (value change dump) writer attached to a simulator.
   Dumps the selected named signals each cycle; only changes are
   written, as the format requires. *)

type t = {
  out : out_channel;
  signals : (string * Signal.t * string) list; (* name, signal, vcd id *)
  last : (int, Bits.t) Hashtbl.t;
  mutable header_done : bool;
}

let ident_of_index i =
  (* VCD identifiers: printable ASCII 33..126. *)
  let base = 94 in
  let rec go i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let attach sim ~path ~signals =
  let out = open_out path in
  let signals =
    List.mapi (fun i (name, s) -> (name, s, ident_of_index i)) signals
  in
  let t = { out; signals; last = Hashtbl.create 64; header_done = false } in
  let write_header () =
    output_string out "$timescale 1ns $end\n$scope module top $end\n";
    List.iter
      (fun (name, (s : Signal.t), id) ->
        Printf.fprintf out "$var wire %d %s %s $end\n" s.Signal.width id name)
      signals;
    output_string out "$upscope $end\n$enddefinitions $end\n"
  in
  let dump_values sim =
    if not t.header_done then begin
      write_header ();
      t.header_done <- true
    end;
    Printf.fprintf out "#%d\n" (Sim.cycle_no sim);
    List.iter
      (fun (_, (s : Signal.t), id) ->
        let v = Sim.peek_signal sim s in
        let changed =
          match Hashtbl.find_opt t.last s.Signal.uid with
          | Some prev -> not (Bits.equal prev v)
          | None -> true
        in
        if changed then begin
          Hashtbl.replace t.last s.Signal.uid v;
          if s.Signal.width = 1 then
            Printf.fprintf out "%s%s\n" (if Bits.to_bool v then "1" else "0") id
          else Printf.fprintf out "b%s %s\n" (Bits.to_binary_string v) id
        end)
      signals
  in
  Sim.on_cycle sim dump_values;
  t

let close t = close_out t.out
