(* Maximal-length Fibonacci LFSRs used as in-circuit pseudo-random
   sources (e.g. variable-latency units).  Tap positions (1-based, MSB
   first) for maximal sequences, per the standard Xilinx table. *)

let taps = function
  | 3 -> [ 3; 2 ] | 4 -> [ 4; 3 ] | 5 -> [ 5; 3 ] | 6 -> [ 6; 5 ]
  | 7 -> [ 7; 6 ] | 8 -> [ 8; 6; 5; 4 ] | 9 -> [ 9; 5 ] | 10 -> [ 10; 7 ]
  | 11 -> [ 11; 9 ] | 12 -> [ 12; 6; 4; 1 ] | 13 -> [ 13; 4; 3; 1 ]
  | 14 -> [ 14; 5; 3; 1 ] | 15 -> [ 15; 14 ] | 16 -> [ 16; 15; 13; 4 ]
  | 17 -> [ 17; 14 ] | 18 -> [ 18; 11 ] | 19 -> [ 19; 6; 2; 1 ]
  | 20 -> [ 20; 17 ] | 21 -> [ 21; 19 ] | 22 -> [ 22; 21 ]
  | 23 -> [ 23; 18 ] | 24 -> [ 24; 23; 22; 17 ]
  | w -> invalid_arg (Printf.sprintf "Lfsr: unsupported width %d" w)

(* [create b ~width ~seed ()] returns the LFSR state register (width
   [width]); it advances every cycle (or when [enable] is high).  The
   seed must be non-zero. *)
let create b ?enable ~width ~seed () =
  if seed = 0 then invalid_arg "Lfsr.create: seed must be non-zero";
  let tap_list = taps width in
  Signal.reg_fb b ?enable ~init:(Bits.of_int ~width seed) ~width (fun state ->
      let feedback =
        Signal.xor_reduce b
          (List.map (fun pos -> Signal.bit b state (pos - 1)) tap_list)
      in
      Signal.concat_msb b [ Signal.select b state ~hi:(width - 2) ~lo:0; feedback ])

(* Pure-OCaml reference model of the same LFSR, for testbenches that
   need to predict the in-circuit sequence. *)
let model ~width ~seed =
  let tap_list = taps width in
  let state = ref seed in
  fun () ->
    let s = !state in
    let feedback =
      List.fold_left (fun acc pos -> acc lxor ((s lsr (pos - 1)) land 1)) 0 tap_list
    in
    state := ((s lsl 1) lor feedback) land ((1 lsl width) - 1);
    s
