(* Netlist optimization passes: constant folding and dead-node
   elimination.

   The generators in this repository emit structural netlists with
   redundancies a synthesis tool would clean up — muxes with constant
   selectors, gates against all-zeros/all-ones, logic whose output
   nobody reads.  [optimize] rewrites a built netlist in place
   semantically: it produces a NEW builder whose circuit is
   behaviourally equivalent (same inputs, outputs, registers and
   memories) but smaller.  The equivalence is checked in the test
   suite by co-simulating random circuits before and after.

   Folding rules (per node, applied bottom-up):
   - operator with all-constant operands  -> Const
   - x & 0 -> 0;  x & 1..1 -> x;  x | 0 -> x;  x | 1..1 -> 1..1
   - x ^ 0 -> x;  x + 0 -> x;  x - 0 -> x
   - mux with constant selector -> selected case
   - mux whose cases are all the same node -> that node
   - not(not x) -> x
   - select over the full width -> argument
   - wire -> its driver (wires vanish entirely)

   Dead-node elimination keeps only the cone of: outputs, registers'
   inputs (enable/clear/d), and memory write ports. *)

module SMap = Map.Make (Int)

type stats = {
  nodes_before : int;
  nodes_after : int;
  folded : int;
}

let is_const (s : Signal.t) =
  match s.Signal.op with Signal.Const _ -> true | _ -> false

let const_value (s : Signal.t) =
  match s.Signal.op with Signal.Const c -> Some c | _ -> None

(* Rebuild the netlist bottom-up into [nb], folding as we go.  Returns
   the mapping from old uid to new signal. *)
let rebuild (c : Circuit.t) nb =
  let map : Signal.t SMap.t ref = ref SMap.empty in
  let folded = ref 0 in
  let find (s : Signal.t) = SMap.find s.Signal.uid !map in
  (* Register data/enable/clear may come later in topological order
     (registers are state sources); wire them up after the sweep. *)
  let fixups : (Signal.t * Signal.t) list ref = ref [] in
  let defer (old : Signal.t) =
    let w = Signal.wire nb old.Signal.width in
    fixups := (w, old) :: !fixups;
    w
  in
  let mem_map : (int, Signal.memory) Hashtbl.t = Hashtbl.create 8 in
  (* Memories must exist before reads are rebuilt. *)
  List.iter
    (fun (m : Signal.memory) ->
      let nm =
        Signal.Memory.create nb ~name:m.Signal.mem_name ~size:m.Signal.size
          ~width:m.Signal.mem_width ?init:m.Signal.init_contents ()
      in
      Hashtbl.replace mem_map m.Signal.mem_uid nm)
    c.Circuit.memories;
  let fold_binop op (x : Signal.t) (y : Signal.t) width =
    let cx = const_value x and cy = const_value y in
    match op, cx, cy with
    | _, Some a, Some b ->
      incr folded;
      let v =
        match op with
        | Signal.And -> Bits.logand a b
        | Signal.Or -> Bits.logor a b
        | Signal.Xor -> Bits.logxor a b
        | Signal.Add -> Bits.add a b
        | Signal.Sub -> Bits.sub a b
        | Signal.Mul -> Bits.mul a b
        | Signal.Eq -> Bits.of_bool (Bits.equal a b)
        | Signal.Ult -> Bits.of_bool (Bits.ult a b)
        | Signal.Slt -> Bits.of_bool (Bits.slt a b)
      in
      Some (Signal.const nb v)
    | Signal.And, Some a, _ when Bits.is_zero a ->
      incr folded; Some (Signal.const nb (Bits.zero width))
    | Signal.And, _, Some b when Bits.is_zero b ->
      incr folded; Some (Signal.const nb (Bits.zero width))
    | Signal.And, Some a, _ when Bits.equal a (Bits.ones width) ->
      incr folded; Some y
    | Signal.And, _, Some b when Bits.equal b (Bits.ones width) ->
      incr folded; Some x
    | Signal.Or, Some a, _ when Bits.is_zero a -> incr folded; Some y
    | Signal.Or, _, Some b when Bits.is_zero b -> incr folded; Some x
    | Signal.Or, Some a, _ when Bits.equal a (Bits.ones width) ->
      incr folded; Some (Signal.const nb (Bits.ones width))
    | Signal.Or, _, Some b when Bits.equal b (Bits.ones width) ->
      incr folded; Some (Signal.const nb (Bits.ones width))
    | Signal.Xor, Some a, _ when Bits.is_zero a -> incr folded; Some y
    | Signal.Xor, _, Some b when Bits.is_zero b -> incr folded; Some x
    | (Signal.Add | Signal.Sub), _, Some b when Bits.is_zero b ->
      incr folded; Some x
    | Signal.Add, Some a, _ when Bits.is_zero a -> incr folded; Some y
    | _ -> None
  in
  Circuit.iter_nodes c (fun (s : Signal.t) ->
      let ns =
        match s.Signal.op with
        | Signal.Const v -> Signal.const nb v
        | Signal.Input n -> Signal.input nb n s.Signal.width
        | Signal.Wire { driver = Some d } ->
          (* Wires vanish: map straight to the rebuilt driver.  (The
             topological order guarantees the driver was rebuilt.) *)
          find d
        | Signal.Wire { driver = None } -> assert false
        | Signal.Not x ->
          let x' = find x in
          (match x'.Signal.op with
           | Signal.Const v -> incr folded; Signal.const nb (Bits.lnot v)
           | Signal.Not y -> incr folded; y
           | _ -> Signal.lnot nb x')
        | Signal.Binop (op, x, y) ->
          let x' = find x and y' = find y in
          (match fold_binop op x' y' s.Signal.width with
           | Some r -> r
           | None ->
             (match op with
              | Signal.And -> Signal.land_ nb x' y'
              | Signal.Or -> Signal.lor_ nb x' y'
              | Signal.Xor -> Signal.lxor_ nb x' y'
              | Signal.Add -> Signal.add nb x' y'
              | Signal.Sub -> Signal.sub nb x' y'
              | Signal.Mul -> Signal.mul nb x' y'
              | Signal.Eq -> Signal.eq nb x' y'
              | Signal.Ult -> Signal.ult nb x' y'
              | Signal.Slt -> Signal.slt nb x' y'))
        | Signal.Mux (sel, cases) ->
          let sel' = find sel in
          let cases' = Array.map find cases in
          (match const_value sel' with
           | Some v ->
             incr folded;
             let i = min (Bits.to_int_trunc v) (Array.length cases' - 1) in
             cases'.(i)
           | None ->
             let first = cases'.(0) in
             if Array.for_all (fun c -> c == first) cases' then begin
               incr folded; first
             end
             else Signal.mux nb sel' (Array.to_list cases'))
        | Signal.Concat parts ->
          let parts' = List.map find parts in
          if List.for_all is_const parts' then begin
            incr folded;
            Signal.const nb
              (Bits.concat (List.filter_map const_value parts'))
          end
          else Signal.concat_msb nb parts'
        | Signal.Select { hi; lo; arg } ->
          let arg' = find arg in
          if lo = 0 && hi = arg'.Signal.width - 1 then begin
            incr folded; arg'
          end
          else (
            match const_value arg' with
            | Some v -> incr folded; Signal.const nb (Bits.select v ~hi ~lo)
            | None -> Signal.select nb arg' ~hi ~lo)
        | Signal.Reg r ->
          Signal.reg nb
            ?enable:(Option.map defer r.Signal.enable)
            ?clear:(Option.map defer r.Signal.clear)
            ~clear_to:r.Signal.clear_to ~init:r.Signal.init (defer r.Signal.d)
        | Signal.Mem_read { mem; addr } ->
          Signal.Memory.read_async nb
            (Hashtbl.find mem_map mem.Signal.mem_uid)
            ~addr:(find addr)
      in
      (match s.Signal.name with
       | Some n when ns.Signal.name = None -> ignore (Signal.set_name ns n)
       | _ -> ());
      map := SMap.add s.Signal.uid ns !map);
  List.iter (fun (w, old) -> Signal.assign w (find old)) !fixups;
  (* Write ports. *)
  List.iter
    (fun (m : Signal.memory) ->
      let nm = Hashtbl.find mem_map m.Signal.mem_uid in
      List.iter
        (fun (p : Signal.write_port) ->
          Signal.Memory.write nb nm
            ~we:(SMap.find p.Signal.we.Signal.uid !map)
            ~addr:(SMap.find p.Signal.waddr.Signal.uid !map)
            ~data:(SMap.find p.Signal.wdata.Signal.uid !map))
        (List.rev m.Signal.write_ports))
    c.Circuit.memories;
  (* Outputs. *)
  List.iter
    (fun (n, (s : Signal.t)) ->
      ignore (Signal.output nb n (SMap.find s.Signal.uid !map)))
    c.Circuit.outputs;
  !folded

(* Dead-node elimination happens implicitly at elaboration time?  No —
   the builder keeps every created node.  We sweep by rebuilding once
   more, creating only nodes reachable from the roots. *)
let live_set (c : Circuit.t) =
  let live = Hashtbl.create 1024 in
  let rec mark (s : Signal.t) =
    if not (Hashtbl.mem live s.Signal.uid) then begin
      Hashtbl.replace live s.Signal.uid ();
      List.iter mark (Circuit.comb_deps s);
      match s.Signal.op with
      | Signal.Reg r ->
        mark r.Signal.d;
        Option.iter mark r.Signal.enable;
        Option.iter mark r.Signal.clear
      | _ -> ()
    end
  in
  List.iter (fun (_, s) -> mark s) c.Circuit.outputs;
  (* Registers and memory write ports are roots because they carry
     state the outputs may read later; primary inputs are kept so the
     optimized circuit preserves the original interface. *)
  Circuit.iter_nodes c (fun s ->
      match s.Signal.op with
      | Signal.Reg _ | Signal.Input _ -> mark s
      | _ -> ());
  List.iter
    (fun (m : Signal.memory) ->
      List.iter
        (fun (p : Signal.write_port) ->
          mark p.Signal.we; mark p.Signal.waddr; mark p.Signal.wdata)
        m.Signal.write_ports)
    c.Circuit.memories;
  live

(* Optimize: fold constants into a fresh builder, elaborate, then
   report.  Dead nodes are those never rebuilt as dependencies of the
   roots; the rebuild pass recreates every node, so we follow it with
   a sweep pass that rebuilds only the live cone. *)
let optimize ?(name = "optimized") (c : Circuit.t) =
  (* Pass 1: fold. *)
  let b1 = Signal.Builder.create () in
  let folded = rebuild c b1 in
  let c1 = Circuit.create ~name b1 in
  (* Pass 2: sweep dead nodes by rebuilding only the live cone. *)
  let live = live_set c1 in
  let b2 = Signal.Builder.create () in
  let map : Signal.t SMap.t ref = ref SMap.empty in
  let mem_map : (int, Signal.memory) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (m : Signal.memory) ->
      Hashtbl.replace mem_map m.Signal.mem_uid
        (Signal.Memory.create b2 ~name:m.Signal.mem_name ~size:m.Signal.size
           ~width:m.Signal.mem_width ?init:m.Signal.init_contents ()))
    c1.Circuit.memories;
  let fixups : (Signal.t * Signal.t) list ref = ref [] in
  Circuit.iter_nodes c1 (fun (s : Signal.t) ->
      if Hashtbl.mem live s.Signal.uid then begin
        let find (x : Signal.t) = SMap.find x.Signal.uid !map in
        let defer (old : Signal.t) =
          let w = Signal.wire b2 old.Signal.width in
          fixups := (w, old) :: !fixups;
          w
        in
        let ns =
          match s.Signal.op with
          | Signal.Const v -> Signal.const b2 v
          | Signal.Input n -> Signal.input b2 n s.Signal.width
          | Signal.Wire { driver = Some d } -> find d
          | Signal.Wire { driver = None } -> assert false
          | Signal.Not x -> Signal.lnot b2 (find x)
          | Signal.Binop (op, x, y) ->
            let f =
              match op with
              | Signal.And -> Signal.land_ | Signal.Or -> Signal.lor_
              | Signal.Xor -> Signal.lxor_ | Signal.Add -> Signal.add
              | Signal.Sub -> Signal.sub | Signal.Mul -> Signal.mul
              | Signal.Eq -> Signal.eq | Signal.Ult -> Signal.ult
              | Signal.Slt -> Signal.slt
            in
            f b2 (find x) (find y)
          | Signal.Mux (sel, cases) ->
            Signal.mux b2 (find sel) (List.map find (Array.to_list cases))
          | Signal.Concat parts -> Signal.concat_msb b2 (List.map find parts)
          | Signal.Select { hi; lo; arg } -> Signal.select b2 (find arg) ~hi ~lo
          | Signal.Reg r ->
            Signal.reg b2
              ?enable:(Option.map defer r.Signal.enable)
              ?clear:(Option.map defer r.Signal.clear)
              ~clear_to:r.Signal.clear_to ~init:r.Signal.init (defer r.Signal.d)
          | Signal.Mem_read { mem; addr } ->
            Signal.Memory.read_async b2
              (Hashtbl.find mem_map mem.Signal.mem_uid)
              ~addr:(find addr)
        in
        (match s.Signal.name with
         | Some n when ns.Signal.name = None -> ignore (Signal.set_name ns n)
         | _ -> ());
        map := SMap.add s.Signal.uid ns !map
      end);
  List.iter
    (fun (w, old) -> Signal.assign w (SMap.find old.Signal.uid !map))
    !fixups;
  List.iter
    (fun (m : Signal.memory) ->
      let nm = Hashtbl.find mem_map m.Signal.mem_uid in
      List.iter
        (fun (p : Signal.write_port) ->
          Signal.Memory.write b2 nm
            ~we:(SMap.find p.Signal.we.Signal.uid !map)
            ~addr:(SMap.find p.Signal.waddr.Signal.uid !map)
            ~data:(SMap.find p.Signal.wdata.Signal.uid !map))
        (List.rev m.Signal.write_ports))
    c1.Circuit.memories;
  List.iter
    (fun (n, (s : Signal.t)) ->
      ignore (Signal.output b2 n (SMap.find s.Signal.uid !map)))
    c1.Circuit.outputs;
  let c2 = Circuit.create ~name b2 in
  ( c2,
    { nodes_before = Circuit.node_count c;
      nodes_after = Circuit.node_count c2;
      folded } )
