lib/hw/lfsr.mli: Signal
