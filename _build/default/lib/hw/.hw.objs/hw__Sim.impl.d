lib/hw/sim.ml: Array Bits Circuit Hashtbl List Printf Signal
