lib/hw/signal.ml: Array Bits List Printf
