lib/hw/wave.ml: Array Bits Buffer List Signal Sim String
