lib/hw/signal.mli: Bits
