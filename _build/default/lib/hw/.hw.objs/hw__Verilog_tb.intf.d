lib/hw/verilog_tb.mli: Buffer Sim
