lib/hw/verilog_tb.ml: Bits Buffer Circuit Hashtbl List Printf Signal Sim Verilog
