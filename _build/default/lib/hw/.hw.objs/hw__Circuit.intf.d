lib/hw/circuit.mli: Hashtbl Signal
