lib/hw/circuit.ml: Array Hashtbl List Printf Signal String
