lib/hw/lfsr.ml: Bits List Printf Signal
