lib/hw/verilog.ml: Array Bits Buffer Circuit Hashtbl List Printf Signal String
