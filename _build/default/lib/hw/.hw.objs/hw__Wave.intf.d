lib/hw/wave.mli: Signal Sim
