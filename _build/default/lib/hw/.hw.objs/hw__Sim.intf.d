lib/hw/sim.mli: Bits Circuit Signal
