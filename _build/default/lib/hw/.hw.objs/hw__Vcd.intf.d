lib/hw/vcd.mli: Signal Sim
