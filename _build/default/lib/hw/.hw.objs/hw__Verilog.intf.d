lib/hw/verilog.mli: Bits Buffer Circuit
