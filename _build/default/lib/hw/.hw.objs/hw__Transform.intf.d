lib/hw/transform.mli: Circuit
