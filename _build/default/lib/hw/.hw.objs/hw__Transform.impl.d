lib/hw/transform.ml: Array Bits Circuit Hashtbl Int List Map Option Signal
