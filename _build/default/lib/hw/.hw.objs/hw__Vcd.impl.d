lib/hw/vcd.ml: Bits Char Hashtbl List Printf Signal Sim String
