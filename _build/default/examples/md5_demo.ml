(* MD5 demo: hash eight messages concurrently on the 8-thread
   multithreaded elastic MD5 circuit (Section V.A of the paper) and
   check every digest against the RFC 1321 reference implementation.

   Run with:  dune exec examples/md5_demo.exe *)

let messages =
  [ "The quick brown fox jumps over the lazy dog";
    "elastic"; "multithreaded"; "systems"; "DATE 2014"; "barrier";
    "reduced MEB"; "hello, world" ]

let () =
  let threads = List.length messages in
  print_endline "-- multithreaded elastic MD5 (8 threads, reduced MEBs) --";
  let circuit = Md5.Md5_circuit.circuit ~kind:Melastic.Meb.Reduced ~threads () in
  Printf.printf "elaborated %d netlist nodes\n" (Hw.Circuit.node_count circuit);
  let sim = Hw.Sim.create circuit in
  let d =
    Workload.Mt_driver.create sim ~src:"msg" ~snk:"digest" ~threads
      ~width:Md5.Md5_circuit.input_width
  in
  List.iteri
    (fun t msg ->
      Workload.Mt_driver.push d ~thread:t
        (Md5.Md5_circuit.input_bits
           ~block:(Md5.Md5_ref.block_to_bits (Md5.Md5_ref.single_block_words msg))
           ~iv:(Md5.Md5_ref.state_to_bits Md5.Md5_ref.iv)))
    messages;
  let ok = Workload.Mt_driver.run_until_drained d ~limit:5000 in
  if not ok then failwith "circuit did not drain";
  Printf.printf "all digests produced in %d cycles\n\n" (Hw.Sim.cycle_no sim);
  List.iteri
    (fun t msg ->
      match Workload.Mt_driver.output_sequence d ~thread:t with
      | [ bits ] ->
        let got = Md5.Md5_ref.to_hex (Md5.Md5_ref.state_of_bits bits) in
        let expect = Md5.Md5_ref.digest msg in
        Printf.printf "thread %d: md5(%-45S) = %s  [%s]\n" t msg got
          (if got = expect then "ok" else "MISMATCH, expected " ^ expect)
      | l -> Printf.printf "thread %d: unexpected output count %d\n" t (List.length l))
    messages
