(* Processor demo: four threads share the elastic pipeline, each
   computing a different function into its own data-memory region;
   results are compared against the reference ISS.

   Run with:  dune exec examples/cpu_demo.exe *)

let program ~threads =
  let buf = Buffer.create 512 in
  (* Per-thread entry stubs: r10 = thread id, r11 = dmem base. *)
  for t = 0 to threads - 1 do
    Buffer.add_string buf
      (Printf.sprintf "addi r10, r0, %d\naddi r11, r0, %d\nj main\n" t (t * 16))
  done;
  Buffer.add_string buf
    "main:\n\
     ; fib(10+tid) iteratively\n\
     addi r1, r0, 0\n\
     addi r2, r0, 1\n\
     addi r3, r10, 10\n\
     fib:  add r4, r1, r2\n\
     mv r1, r2\n\
     mv r2, r4\n\
     addi r3, r3, -1\n\
     bne r3, r0, fib\n\
     sw r2, 0(r11)\n\
     ; sum of squares 1..5 via mul\n\
     addi r5, r0, 0\n\
     addi r6, r0, 5\n\
     sq:   mul r7, r6, r6\n\
     add r5, r5, r7\n\
     addi r6, r6, -1\n\
     bne r6, r0, sq\n\
     sw r5, 1(r11)\n\
     halt\n";
  Buffer.contents buf

let () =
  let threads = 4 in
  print_endline "-- multithreaded elastic processor (4 threads, reduced MEBs) --";
  let text = program ~threads in
  let words = Cpu.Asm.assemble_words text in
  Printf.printf "assembled %d words\n" (List.length words);
  let start_pcs = Array.init threads (fun t -> 3 * t) in
  let config =
    { (Cpu.Mt_pipeline.default_config ~threads) with
      Cpu.Mt_pipeline.start_pcs;
      exe_latency = Melastic.Mt_varlat.Random { max_latency = 2; seed = 21 };
      mem_latency = Melastic.Mt_varlat.Random { max_latency = 3; seed = 13 } }
  in
  let circuit, t = Cpu.Mt_pipeline.circuit config in
  Printf.printf "elaborated %d netlist nodes\n" (Hw.Circuit.node_count circuit);
  let sim = Hw.Sim.create circuit in
  Cpu.Mt_pipeline.load_program sim t words;
  Hw.Sim.settle sim;
  (match Cpu.Mt_pipeline.run_until_halted sim ~limit:50000 with
   | Some cycles ->
     Printf.printf "all threads halted after %d cycles (%d instructions retired)\n\n"
       cycles (Hw.Sim.peek_int sim "retired_total")
   | None -> failwith "did not halt");
  (* Reference run. *)
  let imem = Array.make 1024 0 in
  List.iteri (fun i w -> imem.(i) <- w) words;
  let iss = Cpu.Iss.create ~imem ~dmem_size:1024 ~threads ~start_pcs in
  ignore (Cpu.Iss.run iss);
  for th = 0 to threads - 1 do
    let fib = Cpu.Mt_pipeline.read_dmem sim t (th * 16) in
    let ssq = Cpu.Mt_pipeline.read_dmem sim t ((th * 16) + 1) in
    let ok =
      fib = Cpu.Iss.dmem_value iss (th * 16)
      && ssq = Cpu.Iss.dmem_value iss ((th * 16) + 1)
    in
    Printf.printf "thread %d: fib(%d) = %-6d  sum-of-squares(1..5) = %-4d  [%s]\n" th
      (10 + th) fib ssq
      (if ok then "matches ISS" else "MISMATCH")
  done
