(* Dataflow synthesis demo: the Collatz step counter compiled to a
   multithreaded elastic circuit by the Synth front-end.

   Each token is (steps:8 | value:24).  The loop applies the Collatz
   rule until the value reaches 1, counting iterations; four threads
   run their own numbers through the shared loop concurrently.

   Run with:  dune exec examples/dataflow_demo.exe *)

module S = Hw.Signal
module D = Synth.Dataflow

let value_w = 24
let steps_w = 16
let token_w = value_w + steps_w

let value b tok = S.select b tok ~hi:(value_w - 1) ~lo:0
let steps b tok = S.select b tok ~hi:(token_w - 1) ~lo:value_w

let collatz_step b tok =
  let v = value b tok in
  let even = S.lnot b (S.bit b v 0) in
  let half = S.srl b v 1 in
  let triple1 =
    S.add b (S.add b (S.sll b v 1) v) (S.of_int b ~width:value_w 1)
  in
  let v' = S.mux2 b even half triple1 in
  let s' = S.add b (steps b tok) (S.of_int b ~width:steps_w 1) in
  S.concat_msb b [ s'; v' ]

let reference n =
  let rec go v s = if v = 1 then s else go (if v mod 2 = 0 then v / 2 else (3 * v) + 1) (s + 1) in
  go n 0

let () =
  print_endline "-- dataflow-synthesized Collatz counter (4 threads) --";
  let threads = 4 in
  let g = D.create ~threads () in
  let x = D.input g ~name:"x" ~width:token_w in
  let back, close = D.feedback g ~width:token_w () in
  let merged = D.merge g ~name:"loop" back x in
  let buffered = D.buffer g ~name:"loopbuf" merged in
  let done_, again =
    D.branch g
      ~cond:(fun b tok -> S.eq_const b (value b tok) 1)
      buffered
  in
  let stepped = D.func g ~name:"step" ~width:token_w collatz_step again in
  close stepped;
  D.output g ~name:"y" done_;
  let circuit = D.circuit ~name:"collatz" g in
  Printf.printf "synthesized %d netlist nodes from the dataflow graph\n"
    (Hw.Circuit.node_count circuit);
  let sim = Hw.Sim.create circuit in
  let d = Workload.Mt_driver.create sim ~src:"x" ~snk:"y" ~threads ~width:token_w in
  let inputs = [ 27; 97; 871; 6171 ] in
  List.iteri
    (fun t n -> Workload.Mt_driver.push_int d ~thread:t n)
    inputs;
  let ok = Workload.Mt_driver.run_until_drained d ~limit:20000 in
  if not ok then failwith "did not drain";
  Printf.printf "all threads finished in %d cycles\n\n" (Hw.Sim.cycle_no sim);
  List.iteri
    (fun t n ->
      match Workload.Mt_driver.output_sequence d ~thread:t with
      | [ bits ] ->
        let got = Bits.to_int (Bits.select bits ~hi:(token_w - 1) ~lo:value_w) in
        Printf.printf "thread %d: collatz_steps(%-5d) = %-3d  [%s]\n" t n got
          (if got = reference n then "ok" else
             Printf.sprintf "MISMATCH, expected %d" (reference n))
      | _ -> Printf.printf "thread %d: unexpected output\n" t)
    inputs
