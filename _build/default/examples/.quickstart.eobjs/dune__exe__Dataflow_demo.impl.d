examples/dataflow_demo.ml: Bits Hw List Printf Synth Workload
