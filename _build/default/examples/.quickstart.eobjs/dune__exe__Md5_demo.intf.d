examples/md5_demo.mli:
