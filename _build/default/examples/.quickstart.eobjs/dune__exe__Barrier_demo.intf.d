examples/barrier_demo.mli:
