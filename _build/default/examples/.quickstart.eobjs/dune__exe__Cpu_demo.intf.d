examples/cpu_demo.mli:
