examples/quickstart.ml: Bits Hw List Melastic Printf String Workload
