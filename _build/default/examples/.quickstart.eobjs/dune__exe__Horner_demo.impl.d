examples/horner_demo.ml: Bits Fpga Hw List Melastic Printf String Workload
