examples/cpu_demo.ml: Array Buffer Cpu Hw List Melastic Printf
