examples/dataflow_demo.mli:
