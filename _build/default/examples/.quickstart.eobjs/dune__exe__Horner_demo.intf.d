examples/horner_demo.mli:
