examples/barrier_demo.ml: Hw List Melastic Printf Workload
