examples/md5_demo.ml: Hw List Md5 Melastic Printf Workload
