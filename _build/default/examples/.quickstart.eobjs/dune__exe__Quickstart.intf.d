examples/quickstart.mli:
