(* Elastic MAC pipeline: Horner evaluation of a cubic polynomial on a
   chain of multiply-accumulate stages separated by reduced MEBs —
   the compute-fabric style (elastic CGRAs) the paper's introduction
   motivates.  Tokens carry (x, acc); each stage computes
   acc <- acc * x + c_i.  Three threads stream different x sequences
   through the shared fabric concurrently.

   Run with:  dune exec examples/horner_demo.exe *)

module S = Hw.Signal
module Mc = Melastic.Mt_channel

let coeffs = [ 3; -2; 7; 5 ] (* 3x^3 - 2x^2 + 7x + 5 *)
let xw = 16
let accw = 32
let token_w = xw + accw

let x_of b tok = S.select b tok ~hi:(xw - 1) ~lo:0
let acc_of b tok = S.select b tok ~hi:(token_w - 1) ~lo:xw

let mac c b tok =
  let x = S.sresize b (x_of b tok) accw in
  let acc = acc_of b tok in
  let prod = S.uresize b (S.mul b acc x) accw in
  let acc' = S.add b prod (S.const b (Bits.of_int_trunc ~width:accw c)) in
  S.concat_msb b [ acc'; x_of b tok ]

let reference x =
  List.fold_left (fun acc c -> (acc * x) + c) 0 coeffs land 0xffffffff

let () =
  print_endline "-- elastic Horner MAC pipeline (3 threads, reduced MEBs) --";
  let threads = 3 in
  let b = S.Builder.create () in
  let src = Mc.source b ~name:"x" ~threads ~width:token_w in
  (* Seed stage: acc = c3; then one MAC per remaining coefficient. *)
  let seeded =
    Mc.map b src ~f:(fun b tok ->
        S.concat_msb b
          [ S.const b (Bits.of_int_trunc ~width:accw (List.hd coeffs));
            x_of b tok ])
  in
  let out =
    List.fold_left
      (fun ch (i, c) ->
        let m =
          Melastic.Meb.create
            ~name:(Printf.sprintf "pe%d" i)
            ~kind:Melastic.Meb.Reduced b ch
        in
        Mc.map b m.Melastic.Meb.out ~f:(mac c))
      seeded
      (List.mapi (fun i c -> (i, c)) (List.tl coeffs))
  in
  let last = Melastic.Meb.create ~name:"peout" ~kind:Melastic.Meb.Reduced b out in
  Mc.sink b ~name:"y" last.Melastic.Meb.out;
  let circuit = Hw.Circuit.create ~name:"horner" b in
  Printf.printf "elaborated %d netlist nodes; " (Hw.Circuit.node_count circuit);
  let report = Fpga.Report.of_circuit ~label:"horner" circuit in
  Printf.printf "%d LEs (+%d DSPs) @ %.0f MHz\n\n" report.Fpga.Report.les
    report.Fpga.Report.dsps report.Fpga.Report.fmax_mhz;
  let sim = Hw.Sim.create circuit in
  let d = Workload.Mt_driver.create sim ~src:"x" ~snk:"y" ~threads ~width:token_w in
  let inputs t = List.init 5 (fun i -> (t * 3) + i + 1) in
  for t = 0 to threads - 1 do
    List.iter
      (fun x -> Workload.Mt_driver.push_int d ~thread:t x)
      (inputs t)
  done;
  ignore (Workload.Mt_driver.run_until_drained d ~limit:1000);
  for t = 0 to threads - 1 do
    let got =
      List.map
        (fun bits -> Bits.to_int (Bits.select bits ~hi:(token_w - 1) ~lo:xw))
        (Workload.Mt_driver.output_sequence d ~thread:t)
    in
    let expect = List.map reference (inputs t) in
    Printf.printf "thread %d: p(x) for x=%s -> %s  [%s]\n" t
      (String.concat "," (List.map string_of_int (inputs t)))
      (String.concat "," (List.map string_of_int got))
      (if got = expect then "ok" else "MISMATCH")
  done;
  Printf.printf "pipeline drained in %d cycles\n" (Hw.Sim.cycle_no sim)
