(* Quickstart: build a 2-thread multithreaded elastic pipeline out of
   reduced MEBs, stream tagged tokens through it, and watch the
   channel schedule.

   Run with:  dune exec examples/quickstart.exe *)

module S = Hw.Signal
module Mc = Melastic.Mt_channel

let () =
  print_endline "-- multithreaded elastic quickstart --";
  (* 1. Describe the hardware: source -> MEB -> +1 -> MEB -> sink. *)
  let b = S.Builder.create () in
  let threads = 2 and width = 32 in
  let src = Mc.source b ~name:"src" ~threads ~width in
  let m0 = Melastic.Meb.create ~name:"meb0" ~kind:Melastic.Meb.Reduced b src in
  let plus_one =
    Mc.map b m0.Melastic.Meb.out ~f:(fun b d -> S.add b d (S.of_int b ~width 1))
  in
  let m1 = Melastic.Meb.create ~name:"meb1" ~kind:Melastic.Meb.Reduced b plus_one in
  Mc.sink b ~name:"snk" m1.Melastic.Meb.out;
  (* 2. Elaborate and simulate. *)
  let circuit = Hw.Circuit.create ~name:"quickstart" b in
  Printf.printf "elaborated %d netlist nodes\n" (Hw.Circuit.node_count circuit);
  let sim = Hw.Sim.create circuit in
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width in
  (* 3. Push work for both threads; thread B's consumer stalls for a
     while so you can see elasticity absorb it. *)
  for i = 0 to 9 do
    Workload.Mt_driver.push_int d ~thread:0 (100 + i);
    Workload.Mt_driver.push_int d ~thread:1 (200 + i)
  done;
  Workload.Mt_driver.set_sink_ready d (fun cycle thread ->
      thread = 0 || cycle < 4 || cycle > 12);
  ignore (Workload.Mt_driver.run_until_drained d ~limit:200);
  (* 4. Inspect the results: per-thread streams arrive complete, in
     order, incremented by the datapath. *)
  List.iter
    (fun t ->
      let outs =
        List.map Bits.to_int (Workload.Mt_driver.output_sequence d ~thread:t)
      in
      Printf.printf "thread %d received: %s\n" t
        (String.concat " " (List.map string_of_int outs)))
    [ 0; 1 ];
  let total = List.length (Workload.Mt_driver.outputs d) in
  Printf.printf "total transfers: %d over %d cycles\n" total (Hw.Sim.cycle_no sim)
