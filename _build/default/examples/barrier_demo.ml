(* Barrier demo: three threads repeatedly synchronize at a barrier
   (Fig. 8 of the paper).  Thread arrivals are skewed by a
   variable-latency unit, yet episodes never interleave: every thread
   passes episode k before any thread passes episode k+1.

   Run with:  dune exec examples/barrier_demo.exe *)

module S = Hw.Signal
module Mc = Melastic.Mt_channel

let () =
  print_endline "-- thread-synchronization barrier (3 threads) --";
  let b = S.Builder.create () in
  let threads = 3 and width = 32 in
  let src = Mc.source b ~name:"src" ~threads ~width in
  (* Skew arrivals with a random-latency unit, then buffer, then
     synchronize. *)
  let vl =
    Melastic.Mt_varlat.per_thread ~name:"skew" b src
      ~latency:(Melastic.Mt_varlat.Random { max_latency = 4; seed = 3 })
  in
  let meb =
    Melastic.Meb.create ~name:"outbuf" ~policy:Melastic.Policy.Valid_only
      ~kind:Melastic.Meb.Reduced b vl.Melastic.Mt_varlat.out
  in
  let bar = Melastic.Barrier.create ~name:"bar" b meb.Melastic.Meb.out in
  Mc.sink b ~name:"snk" bar.Melastic.Barrier.out;
  ignore (S.output b "bar_count" bar.Melastic.Barrier.count);
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width in
  let episodes = 4 in
  for e = 0 to episodes - 1 do
    for t = 0 to threads - 1 do
      Workload.Mt_driver.push d ~thread:t
        (Workload.Trace.encode_tag ~width ~thread:t ~seq:e)
    done
  done;
  ignore (Workload.Mt_driver.run_until_drained d ~limit:2000);
  (* Show the release order and check episode separation. *)
  print_endline "tokens passing the barrier (cycle: thread/episode):";
  let last_episode = ref (-1) in
  let ordered = ref true in
  List.iter
    (fun e ->
      let _, seq = Workload.Trace.decode_tag e.Workload.Mt_driver.data in
      Printf.printf "  cycle %3d: %s\n" e.Workload.Mt_driver.cycle
        (Workload.Trace.tag_to_string e.Workload.Mt_driver.data);
      if seq < !last_episode then ordered := false;
      last_episode := max !last_episode seq)
    (Workload.Mt_driver.outputs d);
  Printf.printf "episodes strictly ordered across all threads: %b\n" !ordered
